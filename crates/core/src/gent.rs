//! The unindexed reference implementation of the term generation phase
//! (Figure 10), plus the types shared with the production graph walk.
//!
//! The phase maintains a priority queue of *partial expressions* — terms whose
//! leaves may still be typed holes. The cheapest partial expression is popped,
//! its first hole is located together with the binders in scope
//! (`findFirstHole`), and every pattern/declaration pair that can fill the
//! hole produces a successor expression. Expressions without holes are
//! complete snippets and are emitted in weight order.
//!
//! [`generate_terms_unindexed`] reconstructs directly from the flat
//! [`PatternSet`] — re-running σ, interning and `Select` lookups inside the
//! search loop. The production pipeline instead walks the precomputed
//! [`DerivationGraph`](crate::DerivationGraph) (see
//! [`generate_terms`](crate::generate_terms)), which returns byte-identical
//! results; the implementation here is kept as the oracle for that
//! equivalence (a property test compares the two on random environments) and
//! as the measurable "before" of the refactor in the benchmark suite.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use insynth_lambda::{Param, Term, Ty};
use insynth_succinct::{ScratchStore, TypeStore};

use crate::decl::TypeEnv;
use crate::genp::PatternSet;
use crate::pexpr::{replace_first_hole, unlink_on_drop, PartialExpr};
use crate::prepare::PreparedEnv;
use crate::weights::{Weight, WeightConfig};

/// A cooperative cancellation flag for in-flight reconstruction walks.
///
/// Cloning is cheap and clones share the flag (it is an
/// `Arc<AtomicBool>` underneath): hand one clone to the walk — via
/// [`Query::with_cancel_token`](crate::Query::with_cancel_token) or
/// [`GenerateLimits::cancel`] — and keep another to [`cancel`] from any
/// thread. The walk checks the flag between priority-queue pops, so a
/// cancelled walk stops at the next pop boundary with its frontier intact
/// (the popped entry is re-pushed), reports itself truncated, and emits
/// nothing further. Cancellation is *sticky*: a token never un-cancels, and a
/// walk opened with an already-cancelled token stops before its first pop.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Every walk holding a clone of this token stops at
    /// its next pop boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Budgets bounding the reconstruction phase.
#[derive(Debug, Clone)]
pub struct GenerateLimits {
    /// Maximum number of priority-queue pops.
    pub max_steps: usize,
    /// Wall-clock limit (the paper's reconstruction limit, default 7 s there).
    pub time_limit: Option<Duration>,
    /// Maximum term depth (the `d` bound of the reference RCN function); when
    /// `None`, depth is unbounded and only `max_steps`/`time_limit` apply.
    pub max_depth: Option<usize>,
    /// Upper bound on the number of pending partial expressions (defaults to
    /// [`MAX_FRONTIER`]). When the frontier is full, further successors of the
    /// current expansion are dropped and the outcome is marked truncated; the
    /// queue keeps draining, so completions already enqueued are still
    /// emitted. Configurable mainly so tests can exercise the truncation path
    /// without building a multi-million-entry frontier.
    pub max_frontier: usize,
    /// Cooperative cancellation, checked between pops. `None` (the default)
    /// never cancels.
    pub cancel: Option<CancelToken>,
}

impl Default for GenerateLimits {
    fn default() -> Self {
        GenerateLimits {
            max_steps: 200_000,
            time_limit: None,
            max_depth: None,
            max_frontier: MAX_FRONTIER,
            cancel: None,
        }
    }
}

/// A complete synthesized term together with its weight.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTerm {
    /// The term, in long normal form.
    pub term: Term,
    /// Its total weight (sum of the weights of all symbols it uses).
    pub weight: Weight,
}

/// The outcome of the reconstruction phase.
#[derive(Debug, Clone, Default)]
pub struct GenerateOutcome {
    /// Complete terms in ascending weight order.
    pub terms: Vec<RankedTerm>,
    /// Number of priority-queue pops performed.
    pub steps: usize,
    /// `true` if the walk could not run to its natural end (`n` terms emitted
    /// or queue exhausted). Two distinct causes set this flag:
    ///
    /// * a **budget** ran out — `max_steps` pops, or the `time_limit`
    ///   wall-clock; the walk stops on the spot, and terms the queue still
    ///   held are never emitted;
    /// * the **frontier cap** (`max_frontier`) was hit — successors of the
    ///   expansion in progress are dropped, but the walk continues and keeps
    ///   draining the queue, so everything already enqueued is still emitted
    ///   in order.
    ///
    /// Either way the emitted prefix is exact: every term returned is a true
    /// member of the enumeration with its exact weight; truncation can only
    /// cause terms to be *missing* from the tail.
    pub truncated: bool,
    /// Successor expressions discarded before enqueueing because their
    /// completion lower bound already exceeded the branch-and-bound cutoff
    /// (the n-th best complete candidate found so far). Under the A* walk the
    /// bound includes the admissible heuristic, which is what makes this
    /// number large; the plain best-first walk can only prune on accumulated
    /// weight.
    pub pruned_enqueues: usize,
    /// `true` when the walk ran in A* mode (heuristic-guided ordering);
    /// `false` for the plain best-first walk (unindexed reference, or the
    /// graph walk's fallback when weights are not monotone).
    pub astar: bool,
}

/// Upper bound on the number of pending partial expressions. The frontier of
/// a weight-ordered best-first search in a paper-scale environment can grow
/// into the millions; entries beyond this bound are unreachable within any
/// interactive time budget, so they are dropped (and the outcome is marked
/// truncated). This is the default of [`GenerateLimits::max_frontier`],
/// shared with the graph walk in [`crate::graph`].
pub(crate) const MAX_FRONTIER: usize = 2_000_000;

/// A partial expression: a term whose leaves may be typed holes. Subtrees are
/// `Arc`-shared — replacing the first hole rebuilds only the spine above it —
/// and every walk over the structure (depth, conversion, hole search and
/// replacement, drop) is iterative, so term depth is bounded by memory, not
/// by the call stack (the ROADMAP's deep-term stack-overflow item).
#[derive(Debug)]
enum PExpr {
    /// A typed hole `[ ] : τ` awaiting reconstruction (weight 0, §5.5).
    Hole(Ty),
    /// An application node `λ params . head(args…)`.
    Node {
        params: Vec<Param>,
        head: String,
        args: Vec<Arc<PExpr>>,
    },
}

impl PartialExpr for PExpr {
    fn children(&self) -> Option<&[Arc<Self>]> {
        match self {
            PExpr::Hole(_) => None,
            PExpr::Node { args, .. } => Some(args),
        }
    }

    fn take_children(&mut self) -> Vec<Arc<Self>> {
        match self {
            PExpr::Hole(_) => Vec::new(),
            PExpr::Node { args, .. } => std::mem::take(args),
        }
    }

    fn with_children(&self, children: Vec<Arc<Self>>) -> Self {
        match self {
            PExpr::Hole(_) => unreachable!("holes have no children to replace"),
            PExpr::Node { params, head, .. } => PExpr::Node {
                params: params.clone(),
                head: head.clone(),
                args: children,
            },
        }
    }
}

impl Drop for PExpr {
    fn drop(&mut self) {
        unlink_on_drop(self);
    }
}

impl PExpr {
    /// Maximum node count on any root-to-leaf path, iteratively.
    fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack: Vec<(&PExpr, usize)> = vec![(self, 1)];
        while let Some((expr, depth)) = stack.pop() {
            max = max.max(depth);
            if let PExpr::Node { args, .. } = expr {
                for a in args {
                    stack.push((a, depth + 1));
                }
            }
        }
        max
    }

    /// Converts a hole-free expression to a term (`None` if a hole remains),
    /// iteratively: child terms accumulate on a value stack and are drained
    /// when their node completes, post-order.
    fn to_term(&self) -> Option<Term> {
        enum Step<'a> {
            Visit(&'a PExpr),
            Build(&'a PExpr),
        }
        let mut steps = vec![Step::Visit(self)];
        let mut built: Vec<Term> = Vec::new();
        while let Some(step) = steps.pop() {
            match step {
                Step::Visit(e) => match e {
                    PExpr::Hole(_) => return None,
                    PExpr::Node { args, .. } => {
                        steps.push(Step::Build(e));
                        for a in args.iter().rev() {
                            steps.push(Step::Visit(a));
                        }
                    }
                },
                Step::Build(e) => {
                    let PExpr::Node { params, head, args } = e else {
                        unreachable!("only nodes are scheduled for building")
                    };
                    let out_args = built.split_off(built.len() - args.len());
                    built.push(Term {
                        params: params.clone(),
                        head: head.clone(),
                        args: out_args,
                    });
                }
            }
        }
        built.pop()
    }
}

/// Runs best-first term reconstruction directly over the flat pattern set —
/// the pre-derivation-graph reference implementation.
///
/// * `goal` is the desired simple type τo.
/// * `n` bounds the number of complete terms returned (the paper's `N`).
///
/// The returned terms are in ascending weight order; ties are broken by
/// discovery order, which makes the output deterministic. The production
/// entry point is [`generate_terms`](crate::generate_terms) over a
/// [`DerivationGraph`](crate::DerivationGraph); it returns byte-identical
/// results while skipping the per-hole interning this implementation pays.
#[allow(clippy::too_many_arguments)]
pub fn generate_terms_unindexed(
    prepared: &PreparedEnv,
    store: &mut ScratchStore<'_>,
    patterns: &PatternSet,
    env: &TypeEnv,
    weights: &WeightConfig,
    goal: &Ty,
    n: usize,
    limits: &GenerateLimits,
) -> GenerateOutcome {
    let start = Instant::now();
    let mut outcome = GenerateOutcome::default();
    if n == 0 {
        return outcome;
    }

    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    queue.push(Entry {
        weight: Reverse(Weight::ZERO),
        seq: Reverse(seq),
        expr: Arc::new(PExpr::Hole(goal.clone())),
    });

    while let Some(entry) = queue.pop() {
        if outcome.terms.len() >= n {
            break;
        }
        if outcome.steps >= limits.max_steps {
            outcome.truncated = true;
            break;
        }
        if let Some(limit) = limits.time_limit {
            if start.elapsed() > limit {
                outcome.truncated = true;
                break;
            }
        }
        if let Some(cancel) = &limits.cancel {
            if cancel.is_cancelled() {
                outcome.truncated = true;
                break;
            }
        }
        outcome.steps += 1;

        let mut scope = Vec::new();
        match find_first_hole(&entry.expr, &mut scope) {
            None => {
                let term = entry
                    .expr
                    .to_term()
                    .expect("expression without holes converts to a term");
                outcome.terms.push(RankedTerm {
                    term,
                    weight: entry.weight.0,
                });
            }
            Some((hole_ty, hole_scope)) => {
                for (i, (replacement, added)) in expand_hole(
                    prepared,
                    store,
                    patterns,
                    env,
                    weights,
                    &hole_ty,
                    &hole_scope,
                )
                .into_iter()
                .enumerate()
                {
                    // Large environments can produce thousands of expansions
                    // per hole; re-check the wall-clock budget periodically so
                    // a single step cannot overshoot the reconstruction limit,
                    // and stop enqueueing once the frontier is unreasonably
                    // large (the search is weight-ordered, so entries that far
                    // down the queue would not be reached within any
                    // interactive budget anyway).
                    if i % 128 == 127 {
                        if let Some(limit) = limits.time_limit {
                            if start.elapsed() > limit {
                                outcome.truncated = true;
                                break;
                            }
                        }
                    }
                    if queue.len() >= limits.max_frontier {
                        outcome.truncated = true;
                        break;
                    }
                    let new_expr = replace_first_hole(&entry.expr, &replacement);
                    if let Some(max_depth) = limits.max_depth {
                        if new_expr.depth() > max_depth {
                            continue;
                        }
                    }
                    seq += 1;
                    queue.push(Entry {
                        weight: Reverse(entry.weight.0.plus(added)),
                        seq: Reverse(seq),
                        expr: new_expr,
                    });
                }
            }
        }
    }

    outcome
}

/// Finds the first (leftmost, outermost-first) hole and the lambda binders in
/// scope at that hole — the `findFirstHole` function of Figure 10.
/// Iterative pre-order with explicit backtracking, so term depth cannot
/// overflow the call stack.
fn find_first_hole(expr: &PExpr, scope: &mut Vec<Param>) -> Option<(Ty, Vec<Param>)> {
    // Frames: a node being scanned, the next child index, and the scope
    // length to restore when backtracking past it.
    let mut stack: Vec<(&PExpr, usize, usize)> = Vec::new();
    let mut current = expr;
    loop {
        match current {
            PExpr::Hole(ty) => {
                let found = Some((ty.clone(), scope.clone()));
                scope.truncate(stack.first().map_or(scope.len(), |(_, _, mark)| *mark));
                return found;
            }
            PExpr::Node { params, .. } => {
                let mark = scope.len();
                scope.extend(params.iter().cloned());
                stack.push((current, 0, mark));
            }
        }
        loop {
            let (node, next, mark) = stack.last_mut()?;
            let PExpr::Node { args, .. } = *node else {
                unreachable!("only nodes are pushed on the spine")
            };
            if *next < args.len() {
                current = &args[*next];
                *next += 1;
                break;
            }
            scope.truncate(*mark);
            stack.pop();
        }
    }
}

/// All single-step expansions of a hole of type `hole_ty` with the given
/// binders in scope. Each expansion is a node `λ x̄ . f([ ] … [ ])` together
/// with the weight it adds to the partial expression.
fn expand_hole(
    prepared: &PreparedEnv,
    store: &mut ScratchStore<'_>,
    patterns: &PatternSet,
    env: &TypeEnv,
    weights: &WeightConfig,
    hole_ty: &Ty,
    scope: &[Param],
) -> Vec<(Arc<PExpr>, Weight)> {
    let (arg_tys, ret_ty) = hole_ty.uncurry();
    let ret_name = match ret_ty {
        Ty::Base(name) => name.clone(),
        Ty::Arrow(..) => unreachable!("uncurry ends at a base type"),
    };

    // Fresh binders x1 : τ1 … xn : τn for the hole's own arrows. Names are
    // chosen to be unique along the scope path.
    let fresh: Vec<Param> = arg_tys
        .iter()
        .enumerate()
        .map(|(i, t)| Param::new(format!("var{}", scope.len() + i + 1), (*t).clone()))
        .collect();

    // Γ ∪ S: the succinct environment at the hole.
    let binder_succ: Vec<_> = scope
        .iter()
        .chain(fresh.iter())
        .map(|p| store.sigma(&p.ty))
        .collect();
    let hole_env = store.env_union(prepared.init_env, &binder_succ);
    let ret_sym = store.base_symbol(&ret_name);

    // Head candidates: declarations and in-scope binders whose succinct type
    // matches a pattern (Γ∪S)@S' : v.
    let pattern_args: Vec<Vec<_>> = patterns
        .lookup(hole_env, ret_sym)
        .map(|p| p.args.clone())
        .collect();

    let mut out = Vec::new();
    let binder_lambda_weight = weights.lambda_weight();
    let params_weight = Weight::new(binder_lambda_weight.value() * fresh.len() as f64);

    for args_set in pattern_args {
        let wanted = store.mk_ty(args_set, ret_sym);

        for &decl_idx in prepared.select(wanted) {
            let decl = &env.decls()[decl_idx];
            out.push(build_node(
                &fresh,
                &decl.name,
                &decl.ty,
                prepared.decl_weight[decl_idx],
                params_weight,
            ));
        }

        for binder in scope.iter().chain(fresh.iter()) {
            if store.sigma(&binder.ty) == wanted {
                out.push(build_node(
                    &fresh,
                    &binder.name,
                    &binder.ty,
                    binder_lambda_weight,
                    params_weight,
                ));
            }
        }
    }

    out
}

fn build_node(
    fresh: &[Param],
    head: &str,
    head_ty: &Ty,
    head_weight: Weight,
    params_weight: Weight,
) -> (Arc<PExpr>, Weight) {
    let (rho, _) = head_ty.uncurry();
    let args: Vec<Arc<PExpr>> = rho
        .iter()
        .map(|t| Arc::new(PExpr::Hole((*t).clone())))
        .collect();
    let node = Arc::new(PExpr::Node {
        params: fresh.to_vec(),
        head: head.to_owned(),
        args,
    });
    (node, params_weight.plus(head_weight))
}

/// Priority-queue entry: lighter partial expressions first, FIFO among equals.
struct Entry {
    weight: Reverse<Weight>,
    seq: Reverse<u64>,
    expr: Arc<PExpr>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.weight, self.seq).cmp(&(other.weight, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use crate::explore::{explore, ExploreLimits};
    use crate::genp::generate_patterns;
    use insynth_lambda::check;

    fn synthesize(decls: Vec<Declaration>, goal: Ty, n: usize) -> Vec<RankedTerm> {
        let env: TypeEnv = decls.into_iter().collect();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let outcome = generate_terms_unindexed(
            &prepared,
            &mut store,
            &patterns,
            &env,
            &weights,
            &goal,
            n,
            &GenerateLimits::default(),
        );
        // Every produced term must type check at the goal type.
        let bindings = env.to_bindings();
        for ranked in &outcome.terms {
            check(&bindings, &ranked.term, &goal).expect("synthesized term must type check");
        }
        outcome.terms
    }

    #[test]
    fn synthesizes_simple_application_chain() {
        let terms = synthesize(
            vec![
                Declaration::new("name", Ty::base("String"), DeclKind::Local),
                Declaration::new(
                    "FileInputStream",
                    Ty::fun(vec![Ty::base("String")], Ty::base("FileInputStream")),
                    DeclKind::Imported,
                ),
                Declaration::new(
                    "BufferedInputStream",
                    Ty::fun(
                        vec![Ty::base("FileInputStream")],
                        Ty::base("BufferedInputStream"),
                    ),
                    DeclKind::Imported,
                ),
            ],
            Ty::base("BufferedInputStream"),
            3,
        );
        assert_eq!(terms.len(), 1);
        assert_eq!(
            terms[0].term.to_string(),
            "BufferedInputStream(FileInputStream(name))"
        );
    }

    #[test]
    fn ranks_cheaper_declarations_first() {
        // Both `local` and `imported` inhabit the goal; the local one is cheaper.
        let terms = synthesize(
            vec![
                Declaration::new("imported", Ty::base("Goal"), DeclKind::Imported),
                Declaration::new("local", Ty::base("Goal"), DeclKind::Local),
            ],
            Ty::base("Goal"),
            10,
        );
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[0].term.to_string(), "local");
        assert_eq!(terms[1].term.to_string(), "imported");
        assert!(terms[0].weight < terms[1].weight);
    }

    #[test]
    fn synthesizes_higher_order_argument_with_lambda() {
        // §2.2: new FilterTypeTreeTraverser(var1 => p(var1))
        let terms = synthesize(
            vec![
                Declaration::new(
                    "FilterTypeTreeTraverser",
                    Ty::fun(
                        vec![Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))],
                        Ty::base("FilterTypeTreeTraverser"),
                    ),
                    DeclKind::Imported,
                ),
                Declaration::new(
                    "p",
                    Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("FilterTypeTreeTraverser"),
            5,
        );
        assert!(!terms.is_empty());
        assert_eq!(
            terms[0].term.to_string(),
            "FilterTypeTreeTraverser(var1 => p(var1))"
        );
    }

    #[test]
    fn synthesizes_identity_function_from_empty_environment() {
        // Goal A -> A with nothing in scope: λx. x.
        let terms = synthesize(vec![], Ty::fun(vec![Ty::base("A")], Ty::base("A")), 3);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].term.to_string(), "var1 => var1");
    }

    #[test]
    fn uninhabited_goal_returns_no_terms() {
        let terms = synthesize(
            vec![Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            )],
            Ty::base("A"),
            5,
        );
        assert!(terms.is_empty());
    }

    #[test]
    fn enumerates_infinitely_many_solutions_up_to_n() {
        // s : A -> A and a : A admit a, s(a), s(s(a)), …
        let terms = synthesize(
            vec![
                Declaration::new("a", Ty::base("A"), DeclKind::Local),
                Declaration::new(
                    "s",
                    Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("A"),
            4,
        );
        assert_eq!(terms.len(), 4);
        let rendered: Vec<String> = terms.iter().map(|t| t.term.to_string()).collect();
        assert_eq!(rendered[0], "a");
        assert_eq!(rendered[1], "s(a)");
        assert_eq!(rendered[2], "s(s(a))");
        assert_eq!(rendered[3], "s(s(s(a)))");
        // Weights strictly increase along this chain.
        assert!(terms.windows(2).all(|w| w[0].weight <= w[1].weight));
    }

    #[test]
    fn multi_argument_heads_get_all_arguments_filled() {
        let terms = synthesize(
            vec![
                Declaration::new("x", Ty::base("Int"), DeclKind::Local),
                Declaration::new("y", Ty::base("String"), DeclKind::Local),
                Declaration::new(
                    "pair",
                    Ty::fun(vec![Ty::base("Int"), Ty::base("String")], Ty::base("Pair")),
                    DeclKind::Imported,
                ),
            ],
            Ty::base("Pair"),
            3,
        );
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].term.to_string(), "pair(x, y)");
    }

    #[test]
    fn depth_limit_prunes_deep_terms() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let goal = Ty::base("A");
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let outcome = generate_terms_unindexed(
            &prepared,
            &mut store,
            &patterns,
            &env,
            &weights,
            &goal,
            100,
            &GenerateLimits {
                max_depth: Some(2),
                ..GenerateLimits::default()
            },
        );
        // Only `a` (depth 1) and `s(a)` (depth 2) fit within depth 2.
        let rendered: Vec<String> = outcome.terms.iter().map(|t| t.term.to_string()).collect();
        assert_eq!(rendered, vec!["a", "s(a)"]);
        assert!(!outcome.truncated);
    }

    #[test]
    fn step_limit_truncates_reconstruction() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let goal = Ty::base("A");
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let outcome = generate_terms_unindexed(
            &prepared,
            &mut store,
            &patterns,
            &env,
            &weights,
            &goal,
            1_000,
            &GenerateLimits {
                max_steps: 10,
                ..GenerateLimits::default()
            },
        );
        assert!(outcome.truncated);
        assert!(outcome.steps <= 10);
    }

    #[test]
    fn depth_thousands_terms_do_not_overflow_the_stack() {
        // The ROADMAP deep-term regression: enumerate the `a, s(a), s(s(a)),
        // …` chain down to depth 2000. Every expression helper on this path —
        // find_first_hole, replace_first_hole, to_term, depth and the PExpr
        // Drop — runs once per term-depth level, so all of them must be
        // iterative for this to survive the default 2 MiB test-thread stack.
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let goal = Ty::base("A");
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);

        let n = 2000;
        let outcome = generate_terms_unindexed(
            &prepared,
            &mut store,
            &patterns,
            &env,
            &weights,
            &goal,
            n,
            &GenerateLimits::default(),
        );
        assert_eq!(outcome.terms.len(), n);
        assert!(outcome.terms.windows(2).all(|w| w[0].weight <= w[1].weight));
        assert_eq!(outcome.terms[0].term.to_string(), "a");
        assert_eq!(outcome.terms[n - 1].term.depth(), n);
    }

    #[test]
    fn weight_accounting_matches_the_section4_formula() {
        let env: TypeEnv = vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "mk",
                Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let goal = Ty::base("File");
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let outcome = generate_terms_unindexed(
            &prepared,
            &mut store,
            &patterns,
            &env,
            &weights,
            &goal,
            1,
            &GenerateLimits::default(),
        );
        let ranked = &outcome.terms[0];
        let expected = weights.term_weight(&ranked.term, &|h| {
            let decl = env.find(h).expect("head must be declared");
            weights.declaration_weight(decl)
        });
        assert_eq!(ranked.weight, expected);
    }
}
