//! Shared iterative machinery for `Arc`-shared partial-expression trees.
//!
//! Both reconstruction walks — the unindexed oracle in [`crate::gent`] and
//! the production graph walk in [`crate::graph`] — manipulate the same shape
//! of data: a tree whose leaves may be typed holes and whose application
//! nodes share subtrees through `Arc`. Their hole payloads and head
//! representations differ, but the two depth-critical algorithms (unlinking
//! a tree on drop, and rebuilding the spine above the first hole) are
//! identical and must stay iterative — a term's depth equals its spine
//! length, so any recursion here reintroduces the deep-term stack overflow
//! these helpers exist to close. This module holds the one copy both walks
//! use; the hole search and term conversion stay with each walk (their
//! scope/depth bookkeeping and outputs genuinely differ).

use std::sync::Arc;

/// A partial-expression tree node: a typed hole (leaf) or an application
/// node with `Arc`-shared children.
pub(crate) trait PartialExpr: Sized {
    /// The node's children, or `None` when it is a hole.
    fn children(&self) -> Option<&[Arc<Self>]>;

    /// Moves the children out of the node, leaving it childless; holes
    /// return an empty list. Used by the iterative drop.
    fn take_children(&mut self) -> Vec<Arc<Self>>;

    /// A copy of this node with its child list replaced.
    ///
    /// # Panics
    ///
    /// Implementations may panic on holes (holes have no children).
    fn with_children(&self, children: Vec<Arc<Self>>) -> Self;
}

/// Unlinks `node`'s uniquely owned subtrees iteratively — the body of both
/// walks' `Drop` implementations. The default recursive drop would recurse
/// once per term-depth level; shared subtrees (other `Arc` holders) are left
/// alone, and whoever drops the last handle continues the unlinking, again
/// iteratively.
pub(crate) fn unlink_on_drop<T: PartialExpr>(node: &mut T) {
    let mut stack = node.take_children();
    while let Some(rc) = stack.pop() {
        // `T` implements `Drop` (that is why we are here), so the unwrapped
        // node cannot be destructured by move; empty its children in place
        // instead — it then drops childless, without recursing.
        let Ok(mut owned) = Arc::try_unwrap(rc) else {
            continue;
        };
        stack.append(&mut owned.take_children());
    }
}

/// Replaces the first (leftmost, outermost-first) hole of `expr` — which
/// must contain one — by `replacement`, sharing every untouched subtree:
/// only the spine above the hole is rebuilt, siblings are `Arc`-shared.
/// Iterative in the term depth.
pub(crate) fn replace_first_hole<T: PartialExpr>(expr: &Arc<T>, replacement: &Arc<T>) -> Arc<T> {
    // Phase 1: pre-order search for the first hole, recording the spine of
    // (ancestor, child-index) pairs leading to it.
    let mut spine: Vec<(&Arc<T>, usize)> = Vec::new();
    let mut current = expr;
    loop {
        match current.children() {
            None => break,
            Some(_) => spine.push((current, 0)),
        }
        loop {
            let frame = spine
                .last_mut()
                .expect("expression must contain a hole to replace");
            let node: &Arc<T> = frame.0;
            let args = node.children().expect("only nodes are pushed on the spine");
            if frame.1 < args.len() {
                current = &args[frame.1];
                frame.1 += 1;
                break;
            }
            spine.pop();
        }
    }
    // Phase 2: rebuild the spine bottom-up.
    let mut rebuilt = Arc::clone(replacement);
    for (node, next) in spine.into_iter().rev() {
        let args = node.children().expect("only nodes are pushed on the spine");
        let idx = next - 1;
        let mut new_args = Vec::with_capacity(args.len());
        new_args.extend(args[..idx].iter().cloned());
        new_args.push(rebuilt);
        new_args.extend(args[idx + 1..].iter().cloned());
        rebuilt = Arc::new(node.with_children(new_args));
    }
    rebuilt
}
