//! Declarations and type environments (the Γo of the paper).

use std::fmt;

use insynth_lambda::Ty;

/// The lexical/statistical category of a declaration, which determines its
/// base weight (paper Table 1).
///
/// Smaller weights mean "more desirable": local values beat class members,
/// which beat package members, which beat imported API symbols; coercion
/// functions introduced for subtyping are cheap so that subtype conversions do
/// not penalize a snippet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeclKind {
    /// A lambda binder introduced during synthesis (weight 1).
    Lambda,
    /// A value declared in the enclosing method/local scope (weight 5).
    Local,
    /// A coercion function witnessing a subtype edge (weight 10).
    Coercion,
    /// A member of the class where the completion is invoked (weight 20).
    Class,
    /// A member of the enclosing package (weight 25).
    Package,
    /// A literal placeholder (weight 200).
    Literal,
    /// An imported API symbol; weight additionally depends on its corpus
    /// frequency (weight `215 + 785/(1+f)`).
    Imported,
}

impl fmt::Display for DeclKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeclKind::Lambda => "lambda",
            DeclKind::Local => "local",
            DeclKind::Coercion => "coercion",
            DeclKind::Class => "class",
            DeclKind::Package => "package",
            DeclKind::Literal => "literal",
            DeclKind::Imported => "imported",
        };
        f.write_str(s)
    }
}

/// A named, typed declaration `x : τ` visible at the completion point.
///
/// # Example
///
/// ```
/// use insynth_core::{Declaration, DeclKind};
/// use insynth_lambda::Ty;
///
/// let d = Declaration::simple(
///     "FileInputStream",
///     Ty::fun(vec![Ty::base("String")], Ty::base("FileInputStream")),
///     DeclKind::Imported,
/// )
/// .with_frequency(120);
/// assert_eq!(d.name, "FileInputStream");
/// assert_eq!(d.frequency, Some(120));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// The symbol name as it appears in source.
    pub name: String,
    /// The declaration's simple type (receivers of instance methods are
    /// modelled as the first argument).
    pub ty: Ty,
    /// Its lexical/statistical category.
    pub kind: DeclKind,
    /// Number of occurrences of the symbol in the training corpus, if known.
    pub frequency: Option<u64>,
    /// An explicit weight that overrides the Table 1 formula, if set.
    pub weight_override: Option<f64>,
}

impl Declaration {
    /// Creates a declaration with no corpus frequency and no weight override.
    pub fn new(name: impl Into<String>, ty: Ty, kind: DeclKind) -> Self {
        Declaration {
            name: name.into(),
            ty,
            kind,
            frequency: None,
            weight_override: None,
        }
    }

    /// Alias of [`Declaration::new`]; reads better in example code.
    pub fn simple(name: impl Into<String>, ty: Ty, kind: DeclKind) -> Self {
        Self::new(name, ty, kind)
    }

    /// Sets the corpus frequency (number of uses observed in the corpus).
    pub fn with_frequency(mut self, frequency: u64) -> Self {
        self.frequency = Some(frequency);
        self
    }

    /// Overrides the computed weight with an explicit value.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight_override = Some(weight);
        self
    }
}

impl fmt::Display for Declaration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} [{}]", self.name, self.ty, self.kind)
    }
}

/// The original type environment Γo: an ordered collection of declarations.
///
/// # Example
///
/// ```
/// use insynth_core::{Declaration, DeclKind, TypeEnv};
/// use insynth_lambda::Ty;
///
/// let mut env = TypeEnv::new();
/// env.push(Declaration::simple("name", Ty::base("String"), DeclKind::Local));
/// assert_eq!(env.len(), 1);
/// assert!(env.find("name").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeEnv {
    decls: Vec<Declaration>,
}

impl TypeEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a declaration.
    pub fn push(&mut self, decl: Declaration) {
        self.decls.push(decl);
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Returns `true` if the environment has no declarations.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// All declarations, in insertion order.
    pub fn decls(&self) -> &[Declaration] {
        &self.decls
    }

    /// Iterates over the declarations.
    pub fn iter(&self) -> std::slice::Iter<'_, Declaration> {
        self.decls.iter()
    }

    /// Iterates mutably over the declarations (e.g. to attach corpus
    /// frequencies after extraction).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Declaration> {
        self.decls.iter_mut()
    }

    /// Finds the first declaration with the given name.
    pub fn find(&self, name: &str) -> Option<&Declaration> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// The `Select` function of Figure 4: all declarations whose type maps to
    /// the given simple type exactly (used by the reference reconstruction).
    pub fn select_by_ty(&self, ty: &Ty) -> Vec<&Declaration> {
        self.decls.iter().filter(|d| &d.ty == ty).collect()
    }

    /// Converts the environment into lambda-calculus [`insynth_lambda::Bindings`]
    /// for type checking synthesized snippets.
    ///
    /// Note that [`insynth_lambda::Bindings`] resolves a name to a single
    /// type, so overloaded declarations (e.g. the several constructors of
    /// `java.io.BufferedReader`) shadow one another; use [`TypeEnv::admits`]
    /// to type-check terms against an environment with overloading.
    pub fn to_bindings(&self) -> insynth_lambda::Bindings {
        self.decls
            .iter()
            .map(|d| (d.name.clone(), d.ty.clone()))
            .collect()
    }

    /// Overload-aware type checking: returns `true` if the term (in long
    /// normal form) has the expected type under this environment, trying
    /// every declaration that shares the head's name.
    ///
    /// # Example
    ///
    /// ```
    /// use insynth_core::{Declaration, DeclKind, TypeEnv};
    /// use insynth_lambda::{Term, Ty};
    ///
    /// // Two overloads of `mk`; the one-argument overload applies here.
    /// let env: TypeEnv = vec![
    ///     Declaration::simple("s", Ty::base("String"), DeclKind::Local),
    ///     Declaration::simple("mk", Ty::fun(vec![Ty::base("String")], Ty::base("R")), DeclKind::Imported),
    ///     Declaration::simple(
    ///         "mk",
    ///         Ty::fun(vec![Ty::base("String"), Ty::base("Int")], Ty::base("R")),
    ///         DeclKind::Imported,
    ///     ),
    /// ]
    /// .into_iter()
    /// .collect();
    /// let term = Term::app("mk", vec![Term::var("s")]);
    /// assert!(env.admits(&term, &Ty::base("R")));
    /// assert!(!env.admits(&term, &Ty::base("Other")));
    /// ```
    pub fn admits(&self, term: &insynth_lambda::Term, expected: &Ty) -> bool {
        let mut binders: Vec<(String, Ty)> = Vec::new();
        self.admits_rec(&mut binders, term, expected)
    }

    fn admits_rec(
        &self,
        binders: &mut Vec<(String, Ty)>,
        term: &insynth_lambda::Term,
        expected: &Ty,
    ) -> bool {
        let (expected_args, expected_ret) = expected.uncurry();
        if term.params.len() > expected_args.len() {
            return false;
        }
        for (param, want) in term.params.iter().zip(expected_args.iter()) {
            if &param.ty != *want {
                return false;
            }
        }
        // The type the head application must produce: the expected type with
        // the bound arrows stripped off.
        let remaining = Ty::fun(
            expected_args[term.params.len()..]
                .iter()
                .map(|t| (*t).clone())
                .collect(),
            expected_ret.clone(),
        );

        let mark = binders.len();
        binders.extend(term.params.iter().map(|p| (p.name.clone(), p.ty.clone())));

        // Innermost binder shadows; otherwise every declaration sharing the
        // name is a candidate (overloading).
        let candidates: Vec<Ty> =
            if let Some((_, ty)) = binders.iter().rev().find(|(name, _)| name == &term.head) {
                vec![ty.clone()]
            } else {
                self.decls
                    .iter()
                    .filter(|d| d.name == term.head)
                    .map(|d| d.ty.clone())
                    .collect()
            };

        let ok = candidates.iter().any(|head_ty| {
            let (params, ret) = head_ty.uncurry();
            if params.len() != term.args.len() || ret != &remaining {
                return false;
            }
            term.args
                .iter()
                .zip(params.iter())
                .all(|(arg, param)| self.admits_rec(binders, arg, param))
        });

        binders.truncate(mark);
        ok
    }
}

impl FromIterator<Declaration> for TypeEnv {
    fn from_iter<I: IntoIterator<Item = Declaration>>(iter: I) -> Self {
        TypeEnv {
            decls: iter.into_iter().collect(),
        }
    }
}

impl Extend<Declaration> for TypeEnv {
    fn extend<I: IntoIterator<Item = Declaration>>(&mut self, iter: I) {
        self.decls.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_set_fields() {
        let d = Declaration::new("x", Ty::base("Int"), DeclKind::Local)
            .with_frequency(7)
            .with_weight(3.5);
        assert_eq!(d.frequency, Some(7));
        assert_eq!(d.weight_override, Some(3.5));
    }

    #[test]
    fn display_mentions_name_type_and_kind() {
        let d = Declaration::new(
            "f",
            Ty::fun(vec![Ty::base("A")], Ty::base("B")),
            DeclKind::Imported,
        );
        assert_eq!(d.to_string(), "f : A -> B [imported]");
    }

    #[test]
    fn env_find_returns_first_match() {
        let mut env = TypeEnv::new();
        env.push(Declaration::new("x", Ty::base("A"), DeclKind::Local));
        env.push(Declaration::new("x", Ty::base("B"), DeclKind::Imported));
        assert_eq!(env.find("x").unwrap().ty, Ty::base("A"));
        assert!(env.find("missing").is_none());
    }

    #[test]
    fn select_by_ty_matches_exact_simple_types() {
        let mut env = TypeEnv::new();
        let f_ty = Ty::fun(vec![Ty::base("A")], Ty::base("B"));
        env.push(Declaration::new("f", f_ty.clone(), DeclKind::Imported));
        env.push(Declaration::new("g", Ty::base("B"), DeclKind::Local));
        assert_eq!(env.select_by_ty(&f_ty).len(), 1);
        assert_eq!(env.select_by_ty(&Ty::base("B")).len(), 1);
        assert!(env.select_by_ty(&Ty::base("C")).is_empty());
    }

    #[test]
    fn to_bindings_preserves_names_and_types() {
        let mut env = TypeEnv::new();
        env.push(Declaration::new("x", Ty::base("A"), DeclKind::Local));
        let b = env.to_bindings();
        assert_eq!(b.lookup("x"), Some(&Ty::base("A")));
    }

    #[test]
    fn env_collects_from_iterator() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn decl_kind_ordering_matches_proximity() {
        assert!(DeclKind::Lambda < DeclKind::Local);
        assert!(DeclKind::Local < DeclKind::Imported);
    }
}
