//! The derivation graph: a pattern-indexed, reconstruction-ready view of the
//! derivable space.
//!
//! The pattern generation phase proves *which* `(environment, return type)`
//! goals are inhabited; reconstruction (Figure 10) then repeatedly asks how a
//! hole at such a goal can be filled. The flat pattern table answers that
//! query with hashing, interning and `Select` lookups in the innermost search
//! loop. A [`DerivationGraph`] moves all of that work out of the loop:
//!
//! * **nodes** are the goals of the [`PatternIndex`](insynth_succinct::PatternIndex)
//!   produced by [`generate_patterns`](crate::generate_patterns);
//! * **edges** are weighted applications: for every pattern of a goal, the
//!   `Select`-resolved declarations that realize it, each carrying its weight
//!   and the hole types of its arguments (pre-uncurried, pre-σ-lowered);
//! * a read-only **environment union table** resolves the environment at a
//!   hole without touching (or locking) any interner.
//!
//! After the graph is built, a **heuristic phase** runs a backward Dijkstra
//! (Knuth's generalization to hypergraphs) over it, computing for every goal
//! node an *admissible and consistent* lower bound on the cheapest complete
//! term a hole at that goal can expand into: an edge costs its declaration
//! weight plus the binder weights and bounds of its argument goals, binders
//! that could be in scope contribute conservative pseudo-edges at lambda
//! weight, and goals no edge can complete get bound `∞` — which subsumes the
//! walk's per-pop dead-hole memo (an `∞` hole is dead even when its node
//! exists).
//!
//! [`generate_terms`] is then an **A\*** walk over the graph: the queue is
//! ordered by `g + Σ h(open holes)` (accumulated weight plus the completion
//! bounds of every open hole), no σ, no interning, no string cloning, and two
//! prunings the flat pipeline cannot do:
//!
//! * **dead-hole pruning** — a successor containing a hole whose completion
//!   bound is `∞` can never complete and is dropped at creation;
//! * **branch-and-bound** — once `n` complete candidates are enqueued, any
//!   expression whose *bound* `g + Σ h` exceeds the current n-th best
//!   candidate is dropped before it is enqueued (admissible because `h`
//!   under-estimates; disabled — together with the whole heuristic — when a
//!   negative [`Declaration::with_weight`](crate::Declaration::with_weight)
//!   override breaks weight monotonicity, in which case the walk falls back
//!   to the plain best-first order of [`generate_terms_best_first`]).
//!
//! Ordering by `g + Σ h` changes which partial expressions are *explored*,
//! but not what is *emitted*: admissibility guarantees completions still pop
//! in ascending weight order, and ties are broken by each entry's *pedigree*
//! — the chain of (accumulated weight, expansion index) pairs along its
//! ancestor path — which reproduces, bit for bit, the creation-order
//! tie-break of the plain best-first walk (an entry's creation order is its
//! parent's pop order plus its index within that expansion, recursively).
//! The returned terms are therefore byte-identical to the unindexed
//! reference walk ([`generate_terms_unindexed`](crate::generate_terms_unindexed));
//! a property test asserts exactly that, in both the A* and the fallback
//! regime. Two floating-point guards keep the tie cases honest: hole costs
//! are rounded down onto a dyadic grid so incrementally maintained `Σ h`
//! sums are exact (and stay under-estimates), and the branch-and-bound
//! cutoff is inflated by a margin dwarfing any residual rounding, so an
//! expression whose true bound exactly ties the n-th candidate is never
//! pruned by a stray ulp.
//!
//! A graph is self-contained (it no longer borrows the per-query
//! [`ScratchStore`]), and the heuristic is part of it, which is what lets a
//! [`Session`](crate::Session) cache both and answer repeated queries
//! without re-running exploration, pattern generation or the Dijkstra pass.
//! Two further pieces of sharing keep cached graphs cheap:
//!
//! * the **base environment table is not snapshotted** — the graph holds an
//!   `Arc` of the [`PreparedEnv`] it was built over and resolves base-store
//!   environments through it, copying only the query-local overlay
//!   environments, so every graph cached for one program point shares the
//!   prepared point's interned tables;
//! * the **per-walk caches persist on the graph** — the hole-goal memo (goal
//!   resolution + completion bound per `(environment, hole type)`) and the
//!   expansion cache (dead-checked, bound-summed declaration successors per
//!   `(environment, goal)`) are keyed by graph-local ids only, so they are
//!   taken over by the next walk instead of being rebuilt from scratch; the
//!   first pop of a paper-scale walk resolves thousands of edges, and
//!   repeated same-goal queries now skip exactly that work. (The caches are
//!   mode-specific: a walk forced into the other ordering — e.g.
//!   [`generate_terms_best_first`] on a heuristic-carrying graph — uses
//!   private caches and leaves the persisted ones untouched.)
//!
//! # Example
//!
//! ```
//! use insynth_core::{
//!     explore, generate_patterns, generate_terms, Declaration, DeclKind, DerivationGraph,
//!     ExploreLimits, GenerateLimits, PreparedEnv, TypeEnv, WeightConfig,
//! };
//! use insynth_lambda::Ty;
//! use insynth_succinct::TypeStore;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("name", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "mkFile",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//! let weights = WeightConfig::default();
//! let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));
//! let goal = Ty::base("File");
//! let mut store = prepared.scratch();
//! let goal_succ = store.sigma(&goal);
//! let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
//! let patterns = generate_patterns(&mut store, &space);
//! let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
//! let outcome = generate_terms(&graph, &env, 3, &GenerateLimits::default());
//! assert_eq!(outcome.terms[0].term.to_string(), "mkFile(name)");
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use insynth_intern::Symbol;
use insynth_lambda::{Param, Term, Ty};
use insynth_succinct::{EnvId, ScratchStore, SuccinctTyId, TypeStore};

use crate::decl::TypeEnv;
use crate::genp::PatternSet;
use crate::gent::{GenerateLimits, GenerateOutcome, RankedTerm};
use crate::pexpr::{replace_first_hole, unlink_on_drop, PartialExpr};
use crate::prepare::PreparedEnv;
use crate::weights::{Weight, WeightConfig};

/// Index of an interned hole type in a [`DerivationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HoleTyId(u32);

impl HoleTyId {
    fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// An interned hole type: a simple type together with everything the walk
/// needs to know about it, computed once at graph build time.
#[derive(Debug)]
struct HoleTy {
    /// The simple type itself (cloned into fresh binder parameters).
    ty: Ty,
    /// The final base return type (the goal a hole of this type asks for).
    ret: Symbol,
    /// Uncurried argument types, in order, duplicates kept — the fresh lambda
    /// binders a hole of this type introduces.
    args: Arc<[HoleTyId]>,
    /// The σ image of the type (for matching against edge `wanted` types).
    succ: SuccinctTyId,
    /// Sorted, de-duplicated σ images of `args` (the environment extension a
    /// hole of this type causes).
    arg_succs: Vec<SuccinctTyId>,
}

/// The graph's per-goal variants and declaration edges, packed into
/// contiguous struct-of-arrays slabs with `u32` prefix offsets.
///
/// A goal node's variants are the patterns of that goal (the succinct type an
/// expansion head must have); a variant's edges are the `Select`-resolved
/// declarations realizing it, each carrying its weight and the hole types of
/// its uncurried arguments. Lambda binders in scope are matched against
/// `variant_wanted` at walk time (they are not known at build time). Packing
/// everything walk-adjacent into flat parallel vectors keeps the expansion
/// loop on a handful of contiguous allocations instead of one `Vec<Vec<_>>`
/// tree per node — the layout the cache-locality numbers in
/// `BENCH_BASELINE.json` are measured against.
#[derive(Debug, Default)]
struct EdgeSlab {
    /// Variants of node `v` occupy `node_offsets[v]..node_offsets[v + 1]`
    /// (length `node_count + 1`, first entry `0`).
    node_offsets: Vec<u32>,
    /// The succinct head type each variant matches, one entry per variant.
    variant_wanted: Vec<SuccinctTyId>,
    /// Edges of variant `i` occupy `variant_offsets[i]..variant_offsets[i + 1]`
    /// (length `variant_count + 1`, first entry `0`).
    variant_offsets: Vec<u32>,
    /// Per edge: index into the original [`TypeEnv`].
    edge_decl: Vec<u32>,
    /// Per edge: the declaration's weight under the graph's configuration.
    edge_weight: Vec<Weight>,
    /// Per edge: hole types of the declaration's uncurried arguments.
    edge_args: Vec<Arc<[HoleTyId]>>,
}

impl EdgeSlab {
    fn node_count(&self) -> usize {
        self.node_offsets.len().saturating_sub(1)
    }

    /// Variant indices of a goal node, in derivation order.
    fn variants(&self, node: u32) -> std::ops::Range<usize> {
        let node = node as usize;
        self.node_offsets[node] as usize..self.node_offsets[node + 1] as usize
    }

    /// Edge indices of a variant, in `Select` order.
    fn edges(&self, variant: usize) -> std::ops::Range<usize> {
        self.variant_offsets[variant] as usize..self.variant_offsets[variant + 1] as usize
    }
}

/// The pattern-indexed derivation graph for one explored goal.
///
/// Built once per (program point, goal, prover budget) — see
/// [`DerivationGraph::build`] — and walked by [`generate_terms`]. The graph is
/// immutable, owns no borrows, and is `Send + Sync`, so sessions cache it
/// behind an `Arc` and serve concurrent queries from it.
#[derive(Debug)]
pub struct DerivationGraph {
    /// The prepared environment the graph was built over. Base-store
    /// environment lookups go through it instead of a per-graph snapshot, so
    /// every graph cached for a program point shares the point's interned
    /// tables (and keeps them alive independently of any session).
    base: Arc<PreparedEnv>,
    /// Goal nodes' variants and edges, in
    /// [`PatternIndex`](insynth_succinct::PatternIndex) goal order, packed
    /// into contiguous struct-of-arrays slabs.
    edges: EdgeSlab,
    goal_ids: HashMap<(EnvId, Symbol), u32>,
    tys: Vec<HoleTy>,
    ty_ids: HashMap<Ty, HoleTyId>,
    /// Member lists of the query-local overlay environments only (raw ids
    /// past the base store's), each sorted ascending; base environments are
    /// resolved through `base`. The same `Arc` backs the id-indexed table and
    /// the reverse-lookup keys.
    scratch_envs: Vec<Arc<[SuccinctTyId]>>,
    scratch_env_ids: HashMap<Arc<[SuccinctTyId]>, EnvId>,
    init_env: EnvId,
    root_ty: HoleTyId,
    lambda_weight: Weight,
    /// `true` if every weight the walk can add is non-negative; only then are
    /// the completion-bound heuristic and branch-and-bound pruning admissible.
    monotone: bool,
    /// Per-goal completion lower bounds (the A* heuristic), computed once at
    /// build time; `None` when the graph is not monotone.
    heuristic: Option<Heuristic>,
    /// Persisted hole-goal memo: goal resolution + completion bound per
    /// `(environment, hole type)`, accumulated across walks in the graph's
    /// natural mode (values are deterministic, so merging is safe).
    walk_memo: Mutex<HashMap<(EnvId, HoleTyId), HoleGoal>>,
    /// Persisted expansion cache: the dead-checked, bound-summed
    /// declaration-headed successors per `(environment, goal node)`.
    walk_expansions: Mutex<ExpansionCache>,
}

/// The expansion cache's shape: per `(environment, goal node)`, the shared
/// list of surviving declaration-headed successor variants.
type ExpansionCache = HashMap<(EnvId, u32), Arc<[CachedVariant]>>;

/// The admissible completion-cost heuristic: for every goal node, a lower
/// bound on the weight of the cheapest complete term a hole at that goal can
/// expand into (*excluding* the hole's own binder-parameter weight, which
/// depends on the hole's simple type and is added per hole by the walk).
///
/// Computed by a backward Dijkstra over the graph's hyperedges (Knuth's
/// algorithm): an edge's cost is its head weight plus, per argument goal, the
/// argument's binder-parameter weight and its own bound; a node's bound is
/// the minimum over its edges, and nodes no edge can complete stay at
/// [`Weight::INFINITY`]. Binder-headed fills — whose availability depends on
/// the scope at the hole, unknown until walk time — are covered by
/// conservative pseudo-edges: for every succinct type a pattern wants, every
/// interned hole type that could put a binder of that type in scope
/// contributes an edge at lambda weight. The minimum over those candidates
/// under-estimates whatever binder is actually in scope, keeping the bound
/// admissible; it is also consistent (each expansion step's cost change is
/// `≥ 0` against the bound), though emission-order correctness only needs
/// admissibility.
#[derive(Debug)]
struct Heuristic {
    /// `node_bound[node]` = completion lower bound of that goal node;
    /// [`Weight::INFINITY`] marks a goal no expansion can ever complete
    /// (subsuming the walk's dead-hole detection).
    node_bound: Vec<Weight>,
}

impl DerivationGraph {
    /// Builds the derivation graph for `goal` from a generated pattern set.
    ///
    /// `store` must be the scratch overlay the patterns were derived in (the
    /// graph snapshots its environment table and interns the few succinct
    /// types the patterns imply). After the build the graph is self-contained;
    /// the scratch can be dropped.
    pub fn build(
        prepared: &Arc<PreparedEnv>,
        store: &mut ScratchStore<'_>,
        patterns: &PatternSet,
        env: &TypeEnv,
        weights: &WeightConfig,
        goal: &Ty,
    ) -> DerivationGraph {
        Self::build_with_threads(prepared, store, patterns, env, weights, goal, 1)
    }

    /// [`DerivationGraph::build`] with the per-goal edge-resolution pass
    /// fanned out over `threads` scoped threads (`<= 1` is the sequential
    /// path; the output is byte-identical either way).
    ///
    /// The build is split into three passes so the parallel one touches no
    /// interner: a *sequential interning pass* replays exactly the
    /// single-thread interning sequence (pattern `wanted` types, the hole
    /// types of every selected declaration's arguments), a *parallel
    /// resolution pass* turns each variant's `Select` list into edge triples
    /// reading only immutable state, and a *sequential assembly pass*
    /// concatenates the per-chunk results into the [`EdgeSlab`] in variant
    /// order.
    pub fn build_with_threads(
        prepared: &Arc<PreparedEnv>,
        store: &mut ScratchStore<'_>,
        patterns: &PatternSet,
        env: &TypeEnv,
        weights: &WeightConfig,
        goal: &Ty,
        threads: usize,
    ) -> DerivationGraph {
        let mut tys: Vec<HoleTy> = Vec::new();
        let mut ty_ids: HashMap<Ty, HoleTyId> = HashMap::new();

        // Hole types of each declaration's uncurried arguments, shared by
        // every edge that declaration heads.
        let mut decl_args: Vec<Option<Arc<[HoleTyId]>>> = vec![None; env.len()];

        // Pass 1 (sequential): interning, in exactly the order the
        // single-threaded build performs it.
        let index = patterns.index();
        let mut goal_ids = HashMap::with_capacity(index.goal_count());
        let mut node_envs = Vec::with_capacity(index.goal_count());
        let mut node_offsets = Vec::with_capacity(index.goal_count() + 1);
        node_offsets.push(0u32);
        let mut variant_wanted = Vec::new();
        for goal_id in index.goals() {
            let (goal_env, ret) = index.goal_key(goal_id);
            goal_ids.insert((goal_env, ret), node_envs.len() as u32);
            node_envs.push(goal_env);
            for pattern in index.patterns_of(goal_id) {
                let wanted = store.mk_ty(pattern.args.clone(), ret);
                for &decl_idx in prepared.select(wanted) {
                    if decl_args[decl_idx].is_none() {
                        let (rho, _) = env.decls()[decl_idx].ty.uncurry();
                        let args: Vec<HoleTyId> = rho
                            .iter()
                            .map(|t| intern_hole_ty(store, &mut tys, &mut ty_ids, t))
                            .collect();
                        decl_args[decl_idx] = Some(args.into());
                    }
                }
                variant_wanted.push(wanted);
            }
            node_offsets.push(variant_wanted.len() as u32);
        }

        // Pass 2 (parallel) + pass 3 (sequential assembly): resolve every
        // variant's `Select` list into packed edge slabs.
        let edges = resolve_edges(prepared, &decl_args, node_offsets, variant_wanted, threads);

        let root_ty = intern_hole_ty(store, &mut tys, &mut ty_ids, goal);

        // Snapshot the overlay's environment table after all interning is
        // done, so the union lookup sees every environment the walk can
        // encounter; base-store environments stay in the shared prepared
        // point and are resolved through the `base` Arc instead of copied.
        let base_envs = prepared.store.env_count();
        let env_count = store.env_count();
        let mut scratch_envs = Vec::with_capacity(env_count - base_envs);
        let mut scratch_env_ids = HashMap::with_capacity(env_count - base_envs);
        for raw in base_envs..env_count {
            let id = EnvId::from_index(raw as u32);
            let members: Arc<[SuccinctTyId]> = store.env_types(id).to_vec().into();
            scratch_env_ids.insert(Arc::clone(&members), id);
            scratch_envs.push(members);
        }

        let lambda_weight = weights.lambda_weight();
        let monotone = prepared.weights_monotone(weights);

        let mut graph = DerivationGraph {
            base: Arc::clone(prepared),
            edges,
            goal_ids,
            tys,
            ty_ids,
            scratch_envs,
            scratch_env_ids,
            init_env: prepared.init_env,
            root_ty,
            lambda_weight,
            monotone,
            heuristic: None,
            walk_memo: Mutex::new(HashMap::new()),
            walk_expansions: Mutex::new(HashMap::new()),
        };
        if graph.monotone {
            graph.heuristic = Some(compute_heuristic(&graph, &node_envs));
        }
        graph
    }

    /// Number of goal nodes.
    pub fn node_count(&self) -> usize {
        self.edges.node_count()
    }

    /// Number of declaration edges across all nodes.
    pub fn edge_count(&self) -> usize {
        self.edges.edge_decl.len()
    }

    /// Number of distinct hole types interned.
    pub fn hole_ty_count(&self) -> usize {
        self.tys.len()
    }

    /// The interned id of a hole type, if the graph knows it.
    pub fn hole_ty(&self, ty: &Ty) -> Option<HoleTyId> {
        self.ty_ids.get(ty).copied()
    }

    /// `true` when the graph carries the A* completion-cost heuristic (i.e.
    /// when its weights are monotone); [`generate_terms`] then runs in A*
    /// mode, otherwise it falls back to the plain best-first walk.
    pub fn has_heuristic(&self) -> bool {
        self.heuristic.is_some()
    }

    /// The admissible lower bound on the weight of the cheapest complete term
    /// of the graph's goal type, or `None` when the graph carries no
    /// heuristic. [`Weight::INFINITY`] means the goal is uninhabited. Every
    /// term [`generate_terms`] emits weighs at least this much — the property
    /// the admissibility tests pin.
    pub fn completion_bound(&self) -> Option<Weight> {
        let heuristic = self.heuristic.as_ref()?;
        Some(match self.resolve(self.init_env, self.root_ty) {
            Some((_, node)) => self
                .hole_params_weight(self.root_ty)
                .plus(heuristic.node_bound[node as usize]),
            None => Weight::INFINITY,
        })
    }

    /// Weight of the lambda binders a hole of type `ty` introduces when it is
    /// expanded (one `lambda_weight` per uncurried argument).
    fn hole_params_weight(&self, ty: HoleTyId) -> Weight {
        Weight::new(self.lambda_weight.value() * self.tys[ty.as_usize()].args.len() as f64)
    }

    /// The sorted member types of an environment: base-store environments are
    /// read through the shared prepared point, overlay environments from the
    /// graph's own snapshot.
    fn env_members(&self, env: EnvId) -> &[SuccinctTyId] {
        let split = self.base.store.env_count();
        let raw = env.as_usize();
        if raw < split {
            self.base.store.env_types(env)
        } else {
            &self.scratch_envs[raw - split]
        }
    }

    /// Looks up an interned environment by its sorted member list, in the
    /// base store first and the overlay snapshot second.
    fn lookup_env(&self, members: &[SuccinctTyId]) -> Option<EnvId> {
        self.base
            .store
            .lookup_env(members)
            .or_else(|| self.scratch_env_ids.get(members).copied())
    }

    /// Resolves the goal of a hole of type `ty` in context environment `ctx`:
    /// the environment at the hole (context extended by the hole's own fresh
    /// binders) and its node, or `None` if the goal is uninhabited — in which
    /// case no expression containing such a hole can ever complete.
    fn resolve(&self, ctx: EnvId, ty: HoleTyId) -> Option<(EnvId, u32)> {
        let info = &self.tys[ty.as_usize()];
        let members = self.env_members(ctx);
        let env = if info
            .arg_succs
            .iter()
            .all(|t| members.binary_search(t).is_ok())
        {
            ctx
        } else {
            let mut merged = members.to_vec();
            merged.extend_from_slice(&info.arg_succs);
            merged.sort_unstable();
            merged.dedup();
            self.lookup_env(&merged)?
        };
        let node = *self.goal_ids.get(&(env, info.ret))?;
        Some((env, node))
    }

    /// Drops the persisted walk caches (hole-goal memo and expansion lists).
    /// Purely a memory/benchmarking lever: the caches are rebuilt on demand
    /// and never affect what a walk emits.
    pub fn clear_walk_caches(&self) {
        lock_recovering(&self.walk_memo).clear();
        lock_recovering(&self.walk_expansions).clear();
    }

    /// Number of persisted hole-goal memo entries (observability for tests
    /// and benchmarks; see [`DerivationGraph::clear_walk_caches`]).
    pub fn walk_memo_len(&self) -> usize {
        lock_recovering(&self.walk_memo).len()
    }
}

/// Locks a mutex, recovering from poisoning: the walk caches only ever hold
/// fully computed, deterministic values, so state abandoned by a panicking
/// thread is safe to adopt.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Recursively interns a simple type and its uncurried arguments as hole
/// types.
fn intern_hole_ty(
    store: &mut ScratchStore<'_>,
    tys: &mut Vec<HoleTy>,
    ty_ids: &mut HashMap<Ty, HoleTyId>,
    ty: &Ty,
) -> HoleTyId {
    if let Some(&id) = ty_ids.get(ty) {
        return id;
    }
    let (arg_tys, _) = ty.uncurry();
    let args: Vec<HoleTyId> = arg_tys
        .iter()
        .map(|a| intern_hole_ty(store, tys, ty_ids, a))
        .collect();
    let succ = store.sigma(ty);
    let ret = store.ret_of(succ);
    let mut arg_succs: Vec<SuccinctTyId> = args.iter().map(|&a| tys[a.as_usize()].succ).collect();
    arg_succs.sort_unstable();
    arg_succs.dedup();
    let id = HoleTyId(tys.len() as u32);
    tys.push(HoleTy {
        ty: ty.clone(),
        ret,
        args: args.into(),
        succ,
        arg_succs,
    });
    ty_ids.insert(ty.clone(), id);
    id
}

/// One worker's packed share of the edge-resolution pass: per-variant edge
/// counts plus flat edge columns, concatenated by the assembly pass.
#[derive(Default)]
struct EdgeChunk {
    counts: Vec<u32>,
    decl: Vec<u32>,
    weight: Vec<Weight>,
    args: Vec<Arc<[HoleTyId]>>,
}

/// Resolves every variant's `Select` list into the packed [`EdgeSlab`].
///
/// The per-variant work reads only immutable state (`prepared`, the filled
/// `decl_args` table) and each variant's output is independent of every
/// other's, so the variants are fanned out over `threads` contiguous chunks;
/// the sequential assembly then concatenates chunk outputs in variant order,
/// making the slab byte-identical to the `threads == 1` run.
fn resolve_edges(
    prepared: &PreparedEnv,
    decl_args: &[Option<Arc<[HoleTyId]>>],
    node_offsets: Vec<u32>,
    variant_wanted: Vec<SuccinctTyId>,
    threads: usize,
) -> EdgeSlab {
    let resolve_chunk = |variants: &[SuccinctTyId]| -> EdgeChunk {
        let mut chunk = EdgeChunk::default();
        chunk.counts.reserve(variants.len());
        for &wanted in variants {
            let selected = prepared.select(wanted);
            chunk.counts.push(selected.len() as u32);
            for &decl_idx in selected {
                chunk.decl.push(decl_idx as u32);
                chunk.weight.push(prepared.decl_weight[decl_idx]);
                chunk
                    .args
                    .push(decl_args[decl_idx].clone().expect("interned in pass 1"));
            }
        }
        chunk
    };

    let threads = threads.max(1).min(variant_wanted.len().max(1));
    let chunks: Vec<EdgeChunk> = if threads <= 1 {
        vec![resolve_chunk(&variant_wanted)]
    } else {
        let per = variant_wanted.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = variant_wanted
                .chunks(per)
                .map(|vs| scope.spawn(move || resolve_chunk(vs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("edge-resolution worker panicked"))
                .collect()
        })
    };

    let edge_total = chunks.iter().map(|c| c.decl.len()).sum();
    let mut slab = EdgeSlab {
        node_offsets,
        variant_wanted,
        variant_offsets: Vec::new(),
        edge_decl: Vec::with_capacity(edge_total),
        edge_weight: Vec::with_capacity(edge_total),
        edge_args: Vec::with_capacity(edge_total),
    };
    slab.variant_offsets.reserve(slab.variant_wanted.len() + 1);
    slab.variant_offsets.push(0);
    for chunk in chunks {
        for count in chunk.counts {
            let last = *slab.variant_offsets.last().expect("seeded with 0");
            slab.variant_offsets.push(last + count);
        }
        slab.edge_decl.extend(chunk.decl);
        slab.edge_weight.extend(chunk.weight);
        slab.edge_args.extend(chunk.args);
    }
    slab
}

/// Computes the per-node completion bounds by a backward Dijkstra over the
/// graph's hyperedges (Knuth's algorithm: a node is finalized when popped,
/// and a hyperedge relaxes its head once every tail goal is finalized).
/// Requires monotone (non-negative) weights — the caller only invokes it
/// when [`DerivationGraph::monotone`] holds.
fn compute_heuristic(graph: &DerivationGraph, node_envs: &[EnvId]) -> Heuristic {
    let node_count = graph.edges.node_count();

    // Candidate binder types per succinct type: a binder only ever enters
    // scope as a hole's parameter, so its type is an interned hole type that
    // appears in some `args` list.
    let mut is_param = vec![false; graph.tys.len()];
    for info in &graph.tys {
        for &a in info.args.iter() {
            is_param[a.as_usize()] = true;
        }
    }
    let mut binder_tys: HashMap<SuccinctTyId, Vec<HoleTyId>> = HashMap::new();
    for (i, info) in graph.tys.iter().enumerate() {
        if is_param[i] {
            binder_tys
                .entry(info.succ)
                .or_default()
                .push(HoleTyId(i as u32));
        }
    }

    // A hyperedge waiting for its tail goals: `acc` starts at the head weight
    // plus the binder-parameter weights of the arguments and accumulates the
    // finalized tail bounds; when `remaining` occurrences are all finalized,
    // `acc` is a candidate bound for `head`.
    struct HyperEdge {
        head: u32,
        acc: Weight,
        remaining: usize,
    }
    let mut edges: Vec<HyperEdge> = Vec::new();
    // Edge occurrences per tail node (an edge appears once per occurrence of
    // the node among its argument goals).
    let mut tail_of: Vec<Vec<u32>> = vec![Vec::new(); node_count];
    // Initial relaxations from edges with no (live) arguments.
    let mut ready: Vec<(Weight, u32)> = Vec::new();
    let mut resolve_memo: HashMap<(EnvId, HoleTyId), Option<(EnvId, u32)>> = HashMap::new();

    for (v, &env_v) in node_envs.iter().enumerate().take(node_count) {
        for vi in graph.edges.variants(v as u32) {
            let decl_edges = graph.edges.edges(vi).map(|e| {
                (
                    graph.edges.edge_weight[e],
                    Arc::clone(&graph.edges.edge_args[e]),
                )
            });
            let binder_edges = binder_tys
                .get(&graph.edges.variant_wanted[vi])
                .into_iter()
                .flatten()
                .map(|&t| {
                    (
                        graph.lambda_weight,
                        Arc::clone(&graph.tys[t.as_usize()].args),
                    )
                });
            'edge: for (head_weight, args) in decl_edges.chain(binder_edges) {
                let mut acc = head_weight;
                let mut tails: Vec<u32> = Vec::with_capacity(args.len());
                for &a in args.iter() {
                    let resolved = *resolve_memo
                        .entry((env_v, a))
                        .or_insert_with(|| graph.resolve(env_v, a));
                    // An argument goal without a node can never complete, so
                    // the whole edge contributes nothing (= ∞).
                    let Some((_, tail)) = resolved else {
                        continue 'edge;
                    };
                    acc = acc.plus(graph.hole_params_weight(a));
                    tails.push(tail);
                }
                if tails.is_empty() {
                    ready.push((acc, v as u32));
                } else {
                    let idx = edges.len() as u32;
                    let remaining = tails.len();
                    for tail in tails {
                        tail_of[tail as usize].push(idx);
                    }
                    edges.push(HyperEdge {
                        head: v as u32,
                        acc,
                        remaining,
                    });
                }
            }
        }
    }

    let mut node_bound = vec![Weight::INFINITY; node_count];
    let mut finalized = vec![false; node_count];
    let mut queue: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
    for (bound, v) in ready {
        if bound < node_bound[v as usize] {
            node_bound[v as usize] = bound;
            queue.push(Reverse((bound, v)));
        }
    }
    while let Some(Reverse((bound, v))) = queue.pop() {
        if finalized[v as usize] {
            continue;
        }
        finalized[v as usize] = true;
        debug_assert_eq!(bound, node_bound[v as usize]);
        for &e in &tail_of[v as usize] {
            let edge = &mut edges[e as usize];
            edge.acc = edge.acc.plus(bound);
            edge.remaining -= 1;
            if edge.remaining == 0 && edge.acc < node_bound[edge.head as usize] {
                node_bound[edge.head as usize] = edge.acc;
                queue.push(Reverse((edge.acc, edge.head)));
            }
        }
    }

    Heuristic { node_bound }
}

/// One memoized pattern of a goal node in a concrete environment: the
/// succinct head type binders are matched against, plus the surviving
/// (non-dead) declaration-headed successors. Declaration-only (binder heads
/// depend on the scope at the hole and are enumerated per pop), which keeps
/// the cache `Send + Sync` so it can persist on the shared graph.
#[derive(Debug)]
struct CachedVariant {
    wanted: SuccinctTyId,
    edges: Vec<CachedEdge>,
}

/// One surviving declaration-headed successor of a cached variant.
/// `args_bound` is the precomputed `Σ h` contribution of the edge's argument
/// holes (zero without heuristic).
#[derive(Debug)]
struct CachedEdge {
    decl: u32,
    weight: Weight,
    args: Arc<[HoleTyId]>,
    args_bound: Weight,
}

/// The head of a partial-expression node.
#[derive(Debug, Clone)]
enum Head {
    /// A declaration, by index into the original environment.
    Decl(u32),
    /// A lambda binder in scope, by name.
    Binder(Arc<str>),
}

/// A partial expression over the graph. Subtrees are shared (`Arc`): replacing
/// the first hole rebuilds only the spine above it.
#[derive(Debug)]
enum PExpr {
    /// A typed hole together with the environment of its context (the initial
    /// environment extended by every binder on the path to the hole).
    Hole { ty: HoleTyId, ctx: EnvId },
    /// An application node `λ params . head(args…)`.
    Node {
        params: Arc<[(Param, HoleTyId)]>,
        head: Head,
        args: Vec<Arc<PExpr>>,
    },
}

impl PartialExpr for PExpr {
    fn children(&self) -> Option<&[Arc<Self>]> {
        match self {
            PExpr::Hole { .. } => None,
            PExpr::Node { args, .. } => Some(args),
        }
    }

    fn take_children(&mut self) -> Vec<Arc<Self>> {
        match self {
            PExpr::Hole { .. } => Vec::new(),
            PExpr::Node { args, .. } => std::mem::take(args),
        }
    }

    fn with_children(&self, children: Vec<Arc<Self>>) -> Self {
        match self {
            PExpr::Hole { .. } => unreachable!("holes have no children to replace"),
            PExpr::Node { params, head, .. } => PExpr::Node {
                params: Arc::clone(params),
                head: head.clone(),
                args: children,
            },
        }
    }
}

impl Drop for PExpr {
    fn drop(&mut self) {
        unlink_on_drop(self);
    }
}

/// Finds the first (leftmost, outermost-first) hole; `scope` is left holding
/// the binders on the path to it, and the returned depth counts its `Node`
/// ancestors. Iterative — the search descends one frame per *term depth*
/// level, which is unbounded (see [`PExpr`]'s `Drop`).
fn find_first_hole<'a>(
    expr: &'a PExpr,
    scope: &mut Vec<&'a (Param, HoleTyId)>,
) -> Option<(HoleTyId, EnvId, u32)> {
    // Frames: a node being scanned, the next child index, and the scope
    // length to restore when backtracking past it.
    let mut stack: Vec<(&'a PExpr, usize, usize)> = Vec::new();
    let mut current = expr;
    loop {
        match current {
            PExpr::Hole { ty, ctx } => return Some((*ty, *ctx, stack.len() as u32)),
            PExpr::Node { params, .. } => {
                let mark = scope.len();
                scope.extend(params.iter());
                stack.push((current, 0, mark));
            }
        }
        // Advance to the next unvisited child, backtracking out of exhausted
        // nodes (and unwinding their scope contribution).
        loop {
            let (node, next, mark) = stack.last_mut()?;
            let PExpr::Node { args, .. } = *node else {
                unreachable!("only nodes are pushed on the spine")
            };
            if *next < args.len() {
                current = &args[*next];
                *next += 1;
                break;
            }
            scope.truncate(*mark);
            stack.pop();
        }
    }
}

/// Converts a hole-free expression to a term, resolving declaration heads
/// against the original environment. Iterative post-order — child terms
/// accumulate on a value stack and are drained when their node completes.
fn to_term(expr: &PExpr, env: &TypeEnv) -> Term {
    enum Step<'a> {
        Visit(&'a PExpr),
        Build(&'a PExpr),
    }
    let mut steps = vec![Step::Visit(expr)];
    let mut built: Vec<Term> = Vec::new();
    while let Some(step) = steps.pop() {
        match step {
            Step::Visit(e) => match e {
                PExpr::Hole { .. } => unreachable!("complete expressions have no holes"),
                PExpr::Node { args, .. } => {
                    steps.push(Step::Build(e));
                    // Children pushed in reverse so they complete left to
                    // right, landing on `built` in argument order.
                    for a in args.iter().rev() {
                        steps.push(Step::Visit(a));
                    }
                }
            },
            Step::Build(e) => {
                let PExpr::Node { params, head, args } = e else {
                    unreachable!("only nodes are scheduled for building")
                };
                let arg_terms = built.split_off(built.len() - args.len());
                built.push(Term {
                    params: params.iter().map(|(p, _)| p.clone()).collect(),
                    head: match head {
                        Head::Decl(i) => env.decls()[*i as usize].name.clone(),
                        Head::Binder(name) => name.to_string(),
                    },
                    args: arg_terms,
                });
            }
        }
    }
    built.pop().expect("one term per complete expression")
}

/// One link of an entry's *pedigree*: the pop key of the expansion that
/// created it. A popped entry's pop key is its accumulated weight plus its
/// own creation key — parent's pop key and index within that expansion —
/// recursively up to the root (represented by `None`).
///
/// In the plain best-first walk with monotone weights, entries pop in
/// nondecreasing `(weight, creation order)` order, and an entry's creation
/// order is exactly `(parent's pop order, expansion index)`. Comparing
/// pedigrees therefore reproduces the best-first walk's global FIFO
/// tie-break without a shared counter — which is what lets the A* walk,
/// whose *exploration* order is different, still emit equal-weight
/// completions in the identical order. (Monotonicity matters: with negative
/// weights a cheap entry can be created *after* a heavier one was already
/// popped, so creation counters and pop keys disagree — but the A* mode is
/// only ever active on monotone graphs.) Ancestor chains are `Arc`-shared,
/// so a pedigree costs one allocation per pop.
struct Pedigree {
    g: Weight,
    idx: u64,
    parent: Option<Arc<Pedigree>>,
}

impl Drop for Pedigree {
    fn drop(&mut self) {
        // Unlink the ancestor chain iteratively: chains grow with expansion
        // count along a lineage (not term depth), so the default recursive
        // Drop could overflow the stack on long walks. Stop at the first
        // ancestor another chain still shares.
        let mut parent = self.parent.take();
        while let Some(node) = parent {
            match Arc::try_unwrap(node) {
                Ok(mut node) => parent = node.parent.take(),
                Err(_) => break,
            }
        }
    }
}

/// Compares two parent pop keys; `None` is the root, whose pop precedes
/// everything (it is the only entry in the queue when the walk starts).
///
/// The defining recursion is `(g, parent pop key, idx)` lexicographically;
/// flattened, that is: weights leaf-to-root first (the leafmost difference
/// decides), then — only when every weight ties down to a shared anchor —
/// creation indices anchor-side-first. Both phases run iteratively because
/// chain length tracks expansion count and recursion could overflow the
/// stack (weights tie wholesale under
/// [`WeightMode::NoWeights`](crate::WeightMode::NoWeights)).
fn cmp_pop_key(a: &Option<Arc<Pedigree>>, b: &Option<Arc<Pedigree>>) -> std::cmp::Ordering {
    use std::cmp::Ordering;

    // Phase 1: weights, leaf to root, stopping at a shared ancestor (or the
    // root on both sides). Chains advance in lockstep, so a length mismatch
    // surfaces as (None, Some) before any anchor is reached.
    let (mut pa, mut pb) = (a, b);
    loop {
        match (pa, pb) {
            (None, None) => break,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(na), Some(nb)) => {
                if Arc::ptr_eq(na, nb) {
                    break;
                }
                match na.g.cmp(&nb.g) {
                    Ordering::Equal => {
                        pa = &na.parent;
                        pb = &nb.parent;
                    }
                    other => return other,
                }
            }
        }
    }

    // Phase 2: every weight tied — replay the (equal-length) prefixes in
    // reverse so creation indices decide anchor-side-first, exactly as the
    // recursive unwinding would. Only reached on full weight ties, so the
    // allocation is rare.
    let mut pairs: Vec<(&Arc<Pedigree>, &Arc<Pedigree>)> = Vec::new();
    let (mut pa, mut pb) = (a, b);
    while let (Some(na), Some(nb)) = (pa, pb) {
        if Arc::ptr_eq(na, nb) {
            break;
        }
        pairs.push((na, nb));
        pa = &na.parent;
        pb = &nb.parent;
    }
    for (na, nb) in pairs.into_iter().rev() {
        match na.idx.cmp(&nb.idx) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Priority-queue entry. The search key is `priority` — the accumulated
/// weight `g` in best-first mode, the completion bound `g + Σ h(open holes)`
/// in A* mode — followed by the mode's tie-break: A* entries replay the
/// best-first creation order through `(g, parent pop key, idx)` (see
/// [`Pedigree`]); best-first entries use the global creation counter `seq`
/// directly, which is exact even when negative weight overrides make
/// creation counters and pop keys disagree. `holes` and `depth` are
/// maintained incrementally so completeness and depth checks are O(1).
struct Entry {
    priority: Weight,
    g: Weight,
    /// `Σ h` over the open holes (exactly zero when `holes == 0`, and in
    /// best-first mode).
    hsum: Weight,
    /// `true` in A* mode; selects the tie-break and is uniform across a walk.
    astar: bool,
    seq: u64,
    parent: Option<Arc<Pedigree>>,
    idx: u64,
    expr: Arc<PExpr>,
    holes: u32,
    depth: u32,
}

impl Entry {
    fn search_key_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority).then_with(|| {
            if self.astar {
                self.g
                    .cmp(&other.g)
                    .then_with(|| cmp_pop_key(&self.parent, &other.parent))
                    .then_with(|| self.idx.cmp(&other.idx))
            } else {
                self.seq.cmp(&other.seq)
            }
        })
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.search_key_cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `BinaryHeap` pops the maximum; reverse so the smallest search key
        // pops first.
        other.search_key_cmp(self)
    }
}

/// Resolution and completion bound of a hole, memoized per `(context, type)`.
#[derive(Debug, Clone, Copy)]
struct HoleGoal {
    /// The hole's goal, or `None` when it is dead — no node at all, or
    /// (under the heuristic) a node whose completion bound is `∞`.
    node: Option<(EnvId, u32)>,
    /// Completion lower bound of the hole: its binder-parameter weight plus
    /// its node's bound. Zero in best-first mode (the bound is unused there);
    /// [`Weight::INFINITY`] when dead in either mode.
    cost: Weight,
}

/// Granularity of the dyadic grid hole costs are rounded *down* onto
/// (`2^-24` ≈ 6e-8). Rounding down keeps every cost an under-estimate
/// (admissibility is preserved), and sums and differences of grid multiples
/// below `2^29` are exact in `f64` — so the incrementally maintained
/// `Σ h` never drifts, and two paths summing the same memoized costs in
/// different orders reach bit-identical `Σ h` values. The loss of pruning
/// precision (≤ `holes · 2^-24`) is orders of magnitude below the smallest
/// gap between distinct realizable weight sums.
const COST_GRID: f64 = (1u64 << 24) as f64;

/// Looks up (or computes) the [`HoleGoal`] of a hole of type `ty` in context
/// environment `ctx`.
fn hole_goal(
    graph: &DerivationGraph,
    heuristic: Option<&Heuristic>,
    memo: &mut HashMap<(EnvId, HoleTyId), HoleGoal>,
    ctx: EnvId,
    ty: HoleTyId,
) -> HoleGoal {
    *memo.entry((ctx, ty)).or_insert_with(|| {
        let resolved = graph.resolve(ctx, ty);
        match heuristic {
            None => HoleGoal {
                node: resolved,
                cost: if resolved.is_some() {
                    Weight::ZERO
                } else {
                    Weight::INFINITY
                },
            },
            Some(h) => match resolved {
                Some((env, node)) if h.node_bound[node as usize].is_finite() => {
                    let exact = graph
                        .hole_params_weight(ty)
                        .plus(h.node_bound[node as usize]);
                    HoleGoal {
                        node: Some((env, node)),
                        cost: Weight::new((exact.value() * COST_GRID).floor() / COST_GRID),
                    }
                }
                _ => HoleGoal {
                    node: None,
                    cost: Weight::INFINITY,
                },
            },
        }
    })
}

/// The branch-and-bound cutoff for a given n-th-best-candidate bound.
///
/// In best-first mode priorities are accumulated weights computed by the
/// exact operation sequence the unindexed oracle uses, so the comparison is
/// strict. In A* mode a priority is `g + hsum`: `hsum` itself is exact
/// (grid-rounded summands, see [`COST_GRID`]), but `g` is off-grid, so that
/// one final addition still rounds — and a partial expression whose true
/// bound ties the cutoff exactly (common: symmetric terms share
/// bit-identical weights) must not be pruned by that last half-ulp, or a
/// tied term the oracle emits could be lost. Pruning less is always
/// output-safe, so the A* cutoff is inflated by a margin that dwarfs the
/// final-addition rounding (≲ 1e-12 relative) while staying far below both
/// the grid step and the smallest gap between distinct realizable weight
/// sums.
fn prune_cutoff(bound: Weight, astar: bool) -> Weight {
    if astar {
        Weight::new(bound.value() + (bound.value().abs() * 1e-9 + 1e-9))
    } else {
        bound
    }
}

/// Runs term reconstruction over a derivation graph: an A* walk ordered by
/// `g + Σ h(open holes)` when the graph carries its completion-cost
/// heuristic, the plain best-first walk of [`generate_terms_best_first`]
/// otherwise (i.e. when negative weight overrides break monotonicity).
///
/// The returned terms are byte-identical (same terms, same weights, same
/// order) to what [`generate_terms_unindexed`](crate::generate_terms_unindexed)
/// produces from the same pattern set; the heuristic only changes which
/// partial expressions are *explored*, never what is emitted. `outcome.steps`
/// counts queue pops and is therefore typically much smaller than both the
/// unindexed and the best-first walk's; `outcome.pruned_enqueues` counts the
/// successors the bound discarded before they ever entered the queue.
pub fn generate_terms(
    graph: &DerivationGraph,
    env: &TypeEnv,
    n: usize,
    limits: &GenerateLimits,
) -> GenerateOutcome {
    walk(graph, env, n, limits, graph.heuristic.is_some())
}

/// Runs term reconstruction in plain best-first (accumulated-weight) order,
/// ignoring the heuristic even when the graph carries one.
///
/// This is the walk [`generate_terms`] falls back to on non-monotone graphs;
/// it is public as the measurable "before" of the A* refactor (the
/// `gent_ablation` benchmarks compare the two on the same graph) and returns
/// byte-identical terms — only `steps`/`pruned_enqueues` differ.
pub fn generate_terms_best_first(
    graph: &DerivationGraph,
    env: &TypeEnv,
    n: usize,
    limits: &GenerateLimits,
) -> GenerateOutcome {
    walk(graph, env, n, limits, false)
}

fn walk(
    graph: &DerivationGraph,
    env: &TypeEnv,
    n: usize,
    limits: &GenerateLimits,
    astar: bool,
) -> GenerateOutcome {
    let start = Instant::now();
    let mut outcome = GenerateOutcome {
        astar,
        ..GenerateOutcome::default()
    };
    if n == 0 {
        return outcome;
    }

    let mut state = WalkState::new(graph, astar);
    let mut bounded = Bounded {
        n,
        candidates: BinaryHeap::new(),
    };
    while state.emitted.len() < n
        && state
            .step_impl(graph, env, limits, &start, Some(&mut bounded))
            .is_some()
    {}
    state.merge_caches_into(graph);

    outcome.steps = state.steps;
    outcome.pruned_enqueues = state.pruned_enqueues;
    outcome.truncated = state.truncated || state.time_truncated || state.cancelled;
    outcome.terms = state.emitted.into_iter().map(|e| e.term).collect();
    outcome
}

/// Branch-and-bound control of an n-bounded walk: the target count and the
/// weights of the `n` best complete candidates enqueued so far (max-heap).
/// Once full, any expression whose completion bound exceeds the top can
/// never be emitted among the first `n`.
///
/// Streamed walks carry no `Bounded` — with no fixed `n` there is no cutoff
/// — and therefore never prune. That is output-safe *and* statistics-safe:
/// a pruned entry's bound exceeds the cutoff, which is at least the n-th
/// emission's weight, and (in the only mode that prunes, A* over a monotone
/// graph) entries pop in nondecreasing priority order — so no pruned entry
/// can pop strictly before the n-th emission. Pruning therefore changes
/// neither the emission sequence nor the pop count at any emission, which
/// is what keeps bounded and streamed trajectories byte-identical.
struct Bounded {
    n: usize,
    candidates: BinaryHeap<Weight>,
}

/// One term a walk has emitted, snapshotting the walk statistics at the
/// moment of emission. The snapshot is what lets a suspended walk report,
/// for any `n` inside its emitted prefix, exactly the `steps`/`truncated`
/// a from-scratch walk stopped at that `n` would report.
#[derive(Clone)]
pub(crate) struct EmittedTerm {
    pub(crate) term: RankedTerm,
    /// Cumulative queue pops up to and including the pop that emitted this
    /// term.
    pub(crate) steps: usize,
    /// Whether a deterministic budget (frontier cap) had already truncated
    /// the walk when this term was emitted.
    pub(crate) truncated: bool,
}

/// The complete, persistable state of one reconstruction walk: the frontier
/// heap, the per-walk memo caches, the tie-break counters and the emission
/// log — the former `walk` locals, extracted so a walk can be suspended
/// after any emission and resumed later. This is the engine shared by the
/// n-bounded [`generate_terms`] / [`generate_terms_best_first`] entry points
/// and the streamed [`Session::query_stream`](crate::Session::query_stream)
/// API.
///
/// A `WalkState` advances exclusively through [`WalkState::step_streamed`]
/// (or the module-internal bounded variant): one call pops entries until a
/// term is emitted (`Some`) or the walk stops (`None` — frontier exhausted,
/// step budget hit, or wall-clock expired; the flag accessors distinguish
/// the causes). Every state transition is deterministic except wall-clock
/// truncation, so a suspended state whose `time_truncated` flag is unset
/// replays exactly what a from-scratch walk would have done — the invariant
/// the session layer's resume discipline is built on (a time-truncated
/// state is never persisted).
pub(crate) struct WalkState {
    queue: BinaryHeap<Entry>,
    memo: HashMap<(EnvId, HoleTyId), HoleGoal>,
    expansions: ExpansionCache,
    seeded_memo: usize,
    seeded_expansions: usize,
    seq: u64,
    steps: usize,
    pruned_enqueues: usize,
    emitted: Vec<EmittedTerm>,
    truncated: bool,
    time_truncated: bool,
    cancelled: bool,
    exhausted: bool,
    astar: bool,
    /// Whether this walk runs in the graph's natural mode and therefore
    /// exchanges warm hole-goal/expansion caches with it.
    persist: bool,
}

impl WalkState {
    /// Seeds a walk over `graph`: clones the persisted per-walk caches (when
    /// running in the graph's natural mode), resolves the root goal and
    /// enqueues the root hole. `astar` selects the queue order — callers
    /// pass [`DerivationGraph::has_heuristic`] for the natural mode.
    pub(crate) fn new(graph: &DerivationGraph, astar: bool) -> WalkState {
        // Hole-goal memo and expansion cache. Both are keyed by graph-local
        // ids only and their values are deterministic, so when the walk runs
        // in the graph's natural mode (the memoized costs depend on whether
        // the heuristic is consulted) it *clones* the caches persisted on
        // the graph (cheap: `Copy` values and `Arc` handles), extends them,
        // and merges them back when it suspends or finishes — repeated
        // same-goal queries skip rebuilding them from scratch, and
        // concurrent walks each start warm (a take-based scheme would leave
        // the second concurrent walk cold). A walk forced into the other
        // mode (e.g. [`generate_terms_best_first`] on a heuristic-carrying
        // graph) uses private caches and leaves the persisted ones
        // untouched.
        let persist = astar == graph.heuristic.is_some();
        let mut memo: HashMap<(EnvId, HoleTyId), HoleGoal> = if persist {
            lock_recovering(&graph.walk_memo).clone()
        } else {
            HashMap::new()
        };
        let expansions: ExpansionCache = if persist {
            lock_recovering(&graph.walk_expansions).clone()
        } else {
            HashMap::new()
        };
        // The merge back is skipped when the walk added nothing — after
        // warm-up the caches are saturated for a goal, and re-inserting
        // every unchanged entry under the mutex would serialize concurrent
        // warm walks on no-op work.
        let seeded_memo = memo.len();
        let seeded_expansions = expansions.len();

        let heuristic = if astar {
            graph.heuristic.as_ref()
        } else {
            None
        };
        let root_goal = hole_goal(graph, heuristic, &mut memo, graph.init_env, graph.root_ty);
        let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
        queue.push(Entry {
            // An uninhabited root makes this ∞; the pop bails out before any
            // arithmetic touches it.
            priority: root_goal.cost,
            g: Weight::ZERO,
            hsum: root_goal.cost,
            astar,
            seq: 0,
            parent: None,
            idx: 0,
            expr: Arc::new(PExpr::Hole {
                ty: graph.root_ty,
                ctx: graph.init_env,
            }),
            holes: 1,
            depth: 1,
        });

        WalkState {
            queue,
            memo,
            expansions,
            seeded_memo,
            seeded_expansions,
            seq: 0,
            steps: 0,
            pruned_enqueues: 0,
            emitted: Vec::new(),
            truncated: false,
            time_truncated: false,
            cancelled: false,
            exhausted: false,
            astar,
            persist,
        }
    }

    /// The emission log so far: every term this walk has popped, oldest
    /// first, with per-emission statistics snapshots.
    pub(crate) fn emitted(&self) -> &[EmittedTerm] {
        &self.emitted
    }

    /// Cumulative queue pops across all legs of this walk.
    pub(crate) fn steps(&self) -> usize {
        self.steps
    }

    /// Successors discarded by branch-and-bound before entering the queue
    /// (always zero for streamed walks, which never prune).
    pub(crate) fn pruned_enqueues(&self) -> usize {
        self.pruned_enqueues
    }

    /// `true` when this walk runs in A* order.
    pub(crate) fn astar(&self) -> bool {
        self.astar
    }

    /// `true` once a *deterministic* budget (step cap or frontier cap)
    /// truncated the walk.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated
    }

    /// `true` once a wall-clock limit truncated the walk. A time-truncated
    /// state may have lost part of an expansion and must never be resumed.
    pub(crate) fn time_truncated(&self) -> bool {
        self.time_truncated
    }

    /// `true` once a [`CancelToken`](crate::CancelToken) stopped the walk.
    /// The stop happens at a pop boundary (the popped entry is re-pushed),
    /// so the frontier itself stays consistent — but *when* the flag landed
    /// is a property of the moment, so the session layer treats a cancelled
    /// state like a time-truncated one and never persists it.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// `true` once the frontier drained: the emission log is the complete
    /// enumeration.
    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Advances a streamed (unbounded, unpruned) walk by one emission,
    /// metering wall-clock time against `leg_start` — resumed walks get a
    /// fresh leg, so a suspended walk's earlier legs do not count against
    /// the current query's budget.
    pub(crate) fn step_streamed(
        &mut self,
        graph: &DerivationGraph,
        env: &TypeEnv,
        limits: &GenerateLimits,
        leg_start: &Instant,
    ) -> Option<&RankedTerm> {
        self.step_impl(graph, env, limits, leg_start, None)
    }

    /// The walk engine: pops and expands entries until a term is emitted
    /// (returned, and appended to the emission log) or the walk stops
    /// (`None`; the flags say why). `bounded` enables the branch-and-bound
    /// prunings of the n-bounded entry points.
    fn step_impl(
        &mut self,
        graph: &DerivationGraph,
        env: &TypeEnv,
        limits: &GenerateLimits,
        leg_start: &Instant,
        mut bounded: Option<&mut Bounded>,
    ) -> Option<&RankedTerm> {
        let heuristic = if self.astar {
            graph.heuristic.as_ref()
        } else {
            None
        };
        loop {
            let Some(entry) = self.queue.pop() else {
                self.exhausted = true;
                return None;
            };
            if self.steps >= limits.max_steps {
                // Budget stops re-push the popped entry: the heap's order is
                // total and deterministic, so restoring the frontier content
                // restores the exact trajectory on resume.
                self.queue.push(entry);
                self.truncated = true;
                return None;
            }
            if let Some(limit) = limits.time_limit {
                if leg_start.elapsed() > limit {
                    self.queue.push(entry);
                    self.time_truncated = true;
                    return None;
                }
            }
            if let Some(cancel) = &limits.cancel {
                if cancel.is_cancelled() {
                    self.queue.push(entry);
                    self.cancelled = true;
                    return None;
                }
            }
            self.steps += 1;

            if entry.holes == 0 {
                self.emitted.push(EmittedTerm {
                    term: RankedTerm {
                        term: to_term(&entry.expr, env),
                        weight: entry.g,
                    },
                    steps: self.steps,
                    truncated: self.truncated,
                });
                return self.emitted.last().map(|e| &e.term);
            }

            // A partial expression whose completion bound (accumulated
            // weight in best-first mode) exceeds the n-th best complete
            // candidate cannot contribute output; skip its expansion.
            if let Some(ctl) = bounded.as_deref_mut() {
                if graph.monotone && ctl.candidates.len() >= ctl.n {
                    if let Some(&bound) = ctl.candidates.peek() {
                        if entry.priority > prune_cutoff(bound, self.astar) {
                            continue;
                        }
                    }
                }
            }

            let mut scope: Vec<&(Param, HoleTyId)> = Vec::new();
            let (hole_ty, ctx, ancestors) = find_first_hole(&entry.expr, &mut scope)
                .expect("entry with holes > 0 contains a hole");
            let filled = hole_goal(graph, heuristic, &mut self.memo, ctx, hole_ty);
            let Some((node_env, node)) = filled.node else {
                // Dead hole (only reachable from the root; successors
                // containing dead holes are pruned at creation).
                continue;
            };
            let filled_cost = filled.cost;

            let info = &graph.tys[hole_ty.as_usize()];
            let fresh: Vec<(Param, HoleTyId)> = info
                .args
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    let ty = graph.tys[a.as_usize()].ty.clone();
                    (Param::new(format!("var{}", scope.len() + i + 1), ty), a)
                })
                .collect();
            let params_weight = Weight::new(graph.lambda_weight.value() * fresh.len() as f64);
            let params: Arc<[(Param, HoleTyId)]> = fresh.into();

            // This pop's key becomes the pedigree of every successor it
            // creates (the A* tie-break; best-first mode breaks ties on seq
            // and skips the allocation entirely).
            let pedigree = self.astar.then(|| {
                Arc::new(Pedigree {
                    g: entry.g,
                    idx: entry.idx,
                    parent: entry.parent.clone(),
                })
            });

            // Declaration-headed successors of this (environment, goal)
            // pair, dead-checked and bound-summed once, then reused by every
            // later pop of the same pair (and, via the persisted cache, by
            // later walks).
            if !self.expansions.contains_key(&(node_env, node)) {
                let memo = &mut self.memo;
                let built: Arc<[CachedVariant]> = graph
                    .edges
                    .variants(node)
                    .map(|vi| CachedVariant {
                        wanted: graph.edges.variant_wanted[vi],
                        edges: graph
                            .edges
                            .edges(vi)
                            .filter_map(|e| {
                                // Dead-hole pruning: an edge whose argument
                                // goals include an uncompletable one can
                                // never finish, in this environment or any
                                // extension reached through this hole.
                                let args = &graph.edges.edge_args[e];
                                let mut args_bound = Weight::ZERO;
                                for &a in args.iter() {
                                    let goal = hole_goal(graph, heuristic, memo, node_env, a);
                                    if !goal.cost.is_finite() {
                                        return None;
                                    }
                                    args_bound = args_bound.plus(goal.cost);
                                }
                                Some(CachedEdge {
                                    decl: graph.edges.edge_decl[e],
                                    weight: graph.edges.edge_weight[e],
                                    args: Arc::clone(args),
                                    args_bound,
                                })
                            })
                            .collect(),
                    })
                    .collect();
                self.expansions.insert((node_env, node), built);
            }
            let cached = Arc::clone(&self.expansions[&(node_env, node)]);

            let mut produced = 0usize;
            'expand: for variant in cached.iter() {
                // Declaration heads first, then binders in scope order — the
                // enumeration order of the unindexed walk. Declaration heads
                // carry their precomputed argument bound; binder heads are
                // marked `None` and checked in the loop body.
                let decl_heads = variant.edges.iter().map(|edge| {
                    (
                        Head::Decl(edge.decl),
                        edge.weight,
                        edge.args.clone(),
                        Some(edge.args_bound),
                    )
                });
                let binder_heads = scope
                    .iter()
                    .copied()
                    .chain(params.iter())
                    .filter(|(_, ty)| graph.tys[ty.as_usize()].succ == variant.wanted)
                    .map(|(param, ty)| {
                        (
                            Head::Binder(Arc::from(param.name.as_str())),
                            graph.lambda_weight,
                            Arc::clone(&graph.tys[ty.as_usize()].args),
                            None,
                        )
                    });

                for (head, head_weight, arg_tys, decl_bound) in decl_heads.chain(binder_heads) {
                    produced += 1;
                    // Re-check the wall-clock budget periodically so one
                    // step cannot overshoot the reconstruction limit. A
                    // mid-expansion stop may leave a partially expanded pop
                    // behind, which is why time-truncated states are never
                    // resumed.
                    if produced.is_multiple_of(128) {
                        if let Some(limit) = limits.time_limit {
                            if leg_start.elapsed() > limit {
                                self.time_truncated = true;
                                return None;
                            }
                        }
                    }
                    if self.queue.len() >= limits.max_frontier {
                        // Stop enqueueing for this pop only — like the
                        // unindexed walk, the queue keeps draining so
                        // completions already enqueued are still emitted.
                        self.truncated = true;
                        break 'expand;
                    }

                    // Dead-hole pruning and Σ h for binder-headed successors
                    // (declaration edges carry both precomputed).
                    let args_bound = match decl_bound {
                        Some(bound) => bound,
                        None => {
                            let mut bound = Weight::ZERO;
                            let mut dead = false;
                            for &a in arg_tys.iter() {
                                let goal = hole_goal(graph, heuristic, &mut self.memo, node_env, a);
                                if !goal.cost.is_finite() {
                                    dead = true;
                                    break;
                                }
                                bound = bound.plus(goal.cost);
                            }
                            if dead {
                                continue;
                            }
                            bound
                        }
                    };

                    let new_weight = entry.g.plus(params_weight.plus(head_weight));
                    let new_holes = entry.holes - 1 + arg_tys.len() as u32;
                    // Pin `Σ h` of complete expressions to exactly zero so
                    // their priority is bit-for-bit their weight, untouched
                    // by the rounding of the incremental bound updates.
                    let new_hsum = if !self.astar || new_holes == 0 {
                        Weight::ZERO
                    } else {
                        Weight::new(entry.hsum.value() - filled_cost.value() + args_bound.value())
                    };
                    let new_priority = new_weight.plus(new_hsum);
                    if let Some(ctl) = bounded.as_deref_mut() {
                        if graph.monotone && ctl.candidates.len() >= ctl.n {
                            if let Some(&bound) = ctl.candidates.peek() {
                                if new_priority > prune_cutoff(bound, self.astar) {
                                    self.pruned_enqueues += 1;
                                    continue;
                                }
                            }
                        }
                    }

                    // Depth: the only lengthened path runs through the hole.
                    let replacement_depth = if arg_tys.is_empty() { 1 } else { 2 };
                    let new_depth = entry.depth.max(ancestors + replacement_depth);
                    if let Some(max_depth) = limits.max_depth {
                        if new_depth as usize > max_depth {
                            continue;
                        }
                    }

                    if let Some(ctl) = bounded.as_deref_mut() {
                        if graph.monotone && new_holes == 0 {
                            if ctl.candidates.len() < ctl.n {
                                ctl.candidates.push(new_weight);
                            } else if let Some(mut top) = ctl.candidates.peek_mut() {
                                if new_weight < *top {
                                    *top = new_weight;
                                }
                            }
                        }
                    }

                    let replacement = Arc::new(PExpr::Node {
                        params: Arc::clone(&params),
                        head,
                        args: arg_tys
                            .iter()
                            .map(|&a| {
                                Arc::new(PExpr::Hole {
                                    ty: a,
                                    ctx: node_env,
                                })
                            })
                            .collect(),
                    });
                    let new_expr = replace_first_hole(&entry.expr, &replacement);
                    self.seq += 1;
                    self.queue.push(Entry {
                        priority: new_priority,
                        g: new_weight,
                        hsum: new_hsum,
                        astar: self.astar,
                        seq: self.seq,
                        parent: pedigree.clone(),
                        idx: produced as u64,
                        expr: new_expr,
                        holes: new_holes,
                        depth: new_depth,
                    });
                }
            }
        }
    }

    /// Move-merges this walk's cache additions into the graph's persisted
    /// caches — the finishing step of the n-bounded entry points, which
    /// discard the state afterwards. Merge (rather than overwrite) so
    /// concurrent walks do not lose each other's additions; values are
    /// deterministic, so colliding keys carry identical entries. Walks that
    /// learned nothing skip the merge entirely.
    fn merge_caches_into(&mut self, graph: &DerivationGraph) {
        if !self.persist {
            return;
        }
        if self.memo.len() > self.seeded_memo {
            let memo = std::mem::take(&mut self.memo);
            let mut shared = lock_recovering(&graph.walk_memo);
            if shared.is_empty() {
                *shared = memo;
            } else {
                shared.extend(memo);
            }
        }
        if self.expansions.len() > self.seeded_expansions {
            let expansions = std::mem::take(&mut self.expansions);
            let mut shared = lock_recovering(&graph.walk_expansions);
            if shared.is_empty() {
                *shared = expansions;
            } else {
                shared.extend(expansions);
            }
        }
    }

    /// Clone-merges this walk's cache additions into the graph's persisted
    /// caches, keeping the state usable — the suspension step of a streamed
    /// walk, which parks the state for a later resume. Idempotent: the
    /// seeded watermarks advance, so a second sync with no new entries is a
    /// no-op.
    pub(crate) fn sync_caches_into(&mut self, graph: &DerivationGraph) {
        if !self.persist {
            return;
        }
        if self.memo.len() > self.seeded_memo {
            let mut shared = lock_recovering(&graph.walk_memo);
            if shared.is_empty() {
                *shared = self.memo.clone();
            } else {
                shared.extend(self.memo.iter().map(|(&k, &v)| (k, v)));
            }
            self.seeded_memo = self.memo.len();
        }
        if self.expansions.len() > self.seeded_expansions {
            let mut shared = lock_recovering(&graph.walk_expansions);
            if shared.is_empty() {
                *shared = self.expansions.clone();
            } else {
                shared.extend(self.expansions.iter().map(|(k, v)| (*k, Arc::clone(v))));
            }
            self.seeded_expansions = self.expansions.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use crate::explore::{explore, ExploreLimits};
    use crate::genp::generate_patterns;
    use crate::gent::generate_terms_unindexed;

    /// Runs both reconstruction paths on the same pattern set and returns
    /// `(graph walk, unindexed reference, graph)`.
    fn both_walks(
        decls: Vec<Declaration>,
        goal: Ty,
        n: usize,
        limits: &GenerateLimits,
    ) -> (GenerateOutcome, GenerateOutcome, DerivationGraph) {
        let env: TypeEnv = decls.into_iter().collect();
        let weights = WeightConfig::default();
        let prepared = Arc::new(PreparedEnv::prepare(&env, &weights));
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let reference = generate_terms_unindexed(
            &prepared, &mut store, &patterns, &env, &weights, &goal, n, limits,
        );
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
        let walked = generate_terms(&graph, &env, n, limits);
        (walked, reference, graph)
    }

    fn rendered(outcome: &GenerateOutcome) -> Vec<(String, u64)> {
        outcome
            .terms
            .iter()
            .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
            .collect()
    }

    #[test]
    fn parallel_graph_build_is_byte_identical_to_sequential() {
        let decls = vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "mkFile",
                Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                DeclKind::Imported,
            ),
            Declaration::new(
                "openFile",
                Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                DeclKind::Imported,
            ),
            Declaration::new(
                "render",
                Ty::fun(
                    vec![Ty::base("File"), Ty::base("String")],
                    Ty::base("String"),
                ),
                DeclKind::Imported,
            ),
            Declaration::new(
                "visit",
                Ty::fun(
                    vec![Ty::fun(vec![Ty::base("File")], Ty::base("String"))],
                    Ty::base("Report"),
                ),
                DeclKind::Imported,
            ),
        ];
        let env: TypeEnv = decls.into_iter().collect();
        let weights = WeightConfig::default();
        let goal = Ty::base("Report");
        let prepared = Arc::new(PreparedEnv::prepare(&env, &weights));

        let build = |threads: usize| {
            let mut store = prepared.scratch();
            let goal_succ = store.sigma(&goal);
            let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
            let patterns = generate_patterns(&mut store, &space);
            DerivationGraph::build_with_threads(
                &prepared, &mut store, &patterns, &env, &weights, &goal, threads,
            )
        };

        let sequential = build(1);
        // Includes thread counts exceeding the variant count.
        for threads in [2, 3, 8, 64] {
            let parallel = build(threads);
            assert_eq!(parallel.edges.node_offsets, sequential.edges.node_offsets);
            assert_eq!(
                parallel.edges.variant_wanted,
                sequential.edges.variant_wanted
            );
            assert_eq!(
                parallel.edges.variant_offsets,
                sequential.edges.variant_offsets
            );
            assert_eq!(parallel.edges.edge_decl, sequential.edges.edge_decl);
            assert_eq!(parallel.edges.edge_weight, sequential.edges.edge_weight);
            assert_eq!(parallel.edges.edge_args, sequential.edges.edge_args);
            assert_eq!(parallel.goal_ids, sequential.goal_ids);
            assert_eq!(parallel.root_ty, sequential.root_ty);
            assert_eq!(parallel.ty_ids, sequential.ty_ids);
            match (&parallel.heuristic, &sequential.heuristic) {
                (Some(p), Some(s)) => assert_eq!(p.node_bound, s.node_bound),
                (None, None) => {}
                _ => panic!("heuristic presence must not depend on thread count"),
            }
            let walked = generate_terms(&parallel, &env, 10, &GenerateLimits::default());
            let reference = generate_terms(&sequential, &env, 10, &GenerateLimits::default());
            assert_eq!(rendered(&walked), rendered(&reference));
        }
    }

    #[test]
    fn graph_walk_matches_reference_on_higher_order_goal() {
        let (walked, reference, graph) = both_walks(
            vec![
                Declaration::new(
                    "traverser",
                    Ty::fun(
                        vec![Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))],
                        Ty::base("Traverser"),
                    ),
                    DeclKind::Imported,
                ),
                Declaration::new(
                    "p",
                    Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("Traverser"),
            5,
            &GenerateLimits::default(),
        );
        assert_eq!(rendered(&walked), rendered(&reference));
        assert_eq!(
            walked.terms[0].term.to_string(),
            "traverser(var1 => p(var1))"
        );
        assert!(graph.node_count() >= 2);
        assert!(graph.edge_count() >= 2);
    }

    #[test]
    fn negative_weight_overrides_disable_pruning_but_keep_results_identical() {
        // A negative override makes weights non-monotone along expansions;
        // the walk must detect that, fall back to unpruned search and still
        // agree with the reference byte for byte.
        let decls = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            )
            .with_weight(-2.0),
        ];
        let limits = GenerateLimits {
            max_depth: Some(4),
            ..GenerateLimits::default()
        };
        let (walked, reference, graph) = both_walks(decls, Ty::base("A"), 8, &limits);
        assert!(!graph.monotone);
        assert_eq!(rendered(&walked), rendered(&reference));
    }

    #[test]
    fn uninhabited_branches_never_become_graph_edges() {
        // `f : B -> A` is a dead end (B uninhabited); `g : C -> A` with
        // `c : C` works. No pattern is derived for the f branch, so `Select`
        // never resolves it into an edge — the graph only contains the g
        // chain, and the walk agrees with the reference byte for byte.
        let decls = vec![
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new(
                "g",
                Ty::fun(vec![Ty::base("C")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new("c", Ty::base("C"), DeclKind::Local),
        ];
        let (walked, reference, graph) =
            both_walks(decls, Ty::base("A"), 10, &GenerateLimits::default());
        assert_eq!(rendered(&walked), rendered(&reference));
        assert_eq!(walked.terms.len(), 1);
        assert_eq!(walked.terms[0].term.to_string(), "g(c)");
        // Two goal nodes (A and C), one edge each: g for A, c for C. The f
        // declaration appears nowhere.
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 2);
        // The pruned walk never pops more than the reference.
        assert!(walked.steps <= reference.steps);
    }

    #[test]
    fn zero_n_short_circuits() {
        let (walked, _, _) = both_walks(
            vec![Declaration::new("a", Ty::base("A"), DeclKind::Local)],
            Ty::base("A"),
            0,
            &GenerateLimits::default(),
        );
        assert!(walked.terms.is_empty());
        assert_eq!(walked.steps, 0);
    }

    #[test]
    fn heuristic_bound_is_exact_on_a_first_order_chain() {
        // Without binders the Dijkstra bound is not just admissible but
        // exact: h(root) equals the weight of the best term.
        let (walked, _, graph) = both_walks(
            vec![
                Declaration::new("name", Ty::base("String"), DeclKind::Local),
                Declaration::new(
                    "mkFile",
                    Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                    DeclKind::Imported,
                ),
            ],
            Ty::base("File"),
            3,
            &GenerateLimits::default(),
        );
        assert!(graph.has_heuristic());
        assert!(walked.astar);
        let bound = graph.completion_bound().expect("monotone graph");
        assert_eq!(bound, walked.terms[0].weight);
    }

    #[test]
    fn uninhabited_goal_gets_an_infinite_bound() {
        let (walked, _, graph) = both_walks(
            vec![Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            )],
            Ty::base("A"),
            5,
            &GenerateLimits::default(),
        );
        assert!(walked.terms.is_empty());
        assert_eq!(graph.completion_bound(), Some(Weight::INFINITY));
    }

    #[test]
    fn astar_never_pops_more_than_the_best_first_walk() {
        let decls = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new(
                "join",
                Ty::fun(vec![Ty::base("A"), Ty::base("A")], Ty::base("A")),
                DeclKind::Imported,
            ),
        ];
        let env: TypeEnv = decls.iter().cloned().collect();
        let limits = GenerateLimits {
            max_depth: Some(4),
            ..GenerateLimits::default()
        };
        let (astar, _, graph) = both_walks(decls, Ty::base("A"), 6, &limits);
        let best_first = generate_terms_best_first(&graph, &env, 6, &limits);
        assert_eq!(
            rendered(&astar),
            rendered(&best_first),
            "both walks emit the identical list"
        );
        assert!(astar.steps <= best_first.steps);
        assert!(astar.astar);
        assert!(!best_first.astar);
    }

    #[test]
    fn long_lineages_with_wholesale_weight_ties_stay_ordered() {
        // NoWeights makes every expansion cost 1, so pedigree comparisons
        // fall through the weight phase into the index phase, and lineage
        // chains grow to ~n links — exercising the iterative cmp and the
        // iterative Drop on a four-digit chain.
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect();
        let weights = WeightConfig::new(crate::WeightMode::NoWeights);
        let prepared = Arc::new(PreparedEnv::prepare(&env, &weights));
        let goal = Ty::base("A");
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);

        // Depth-thousands regression: every expression helper on this path —
        // find/replace/to_term and the PExpr Drop, plus the pedigree cmp and
        // Drop — is iterative, so a chain far past any recursive stack budget
        // must complete on the default 2 MiB test-thread stack. The s-chain's
        // depth equals its node count, so n = 3000 drives each helper through
        // three thousand levels.
        let n = 3000;
        let outcome = generate_terms(&graph, &env, n, &GenerateLimits::default());
        assert_eq!(outcome.terms.len(), n);
        assert!(outcome.terms.windows(2).all(|w| w[0].weight <= w[1].weight));
        // The enumeration is the s-chain: a, s(a), s(s(a)), …
        assert_eq!(outcome.terms[0].term.to_string(), "a");
        assert_eq!(outcome.terms[1].term.to_string(), "s(a)");
        assert_eq!(outcome.terms[n - 1].term.depth(), n);
    }

    #[test]
    fn persisted_walk_caches_accumulate_and_never_change_results() {
        let decls = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new(
                "join",
                Ty::fun(vec![Ty::base("A"), Ty::base("A")], Ty::base("A")),
                DeclKind::Imported,
            ),
        ];
        let env: TypeEnv = decls.iter().cloned().collect();
        let limits = GenerateLimits {
            max_depth: Some(4),
            ..GenerateLimits::default()
        };
        let (cold, _, graph) = both_walks(decls, Ty::base("A"), 6, &limits);
        assert!(
            graph.walk_memo_len() > 0,
            "the natural-mode walk persists its hole-goal memo"
        );

        // Warm walk: same results, same pop count, memo reused.
        let warm = generate_terms(&graph, &env, 6, &limits);
        assert_eq!(rendered(&warm), rendered(&cold));
        assert_eq!(warm.steps, cold.steps);
        assert_eq!(warm.pruned_enqueues, cold.pruned_enqueues);

        // A different n shares the caches too (they are n-independent).
        let fewer = generate_terms(&graph, &env, 2, &limits);
        assert_eq!(rendered(&fewer), rendered(&cold)[..2].to_vec());

        // The forced best-first walk on this heuristic-carrying graph must
        // not adopt (or pollute) the A*-mode caches — its memoized costs
        // would disagree — and still emits the identical list.
        let memo_before = graph.walk_memo_len();
        let best_first = generate_terms_best_first(&graph, &env, 6, &limits);
        assert_eq!(rendered(&best_first), rendered(&cold));
        assert_eq!(graph.walk_memo_len(), memo_before);

        // Clearing is semantically invisible.
        graph.clear_walk_caches();
        assert_eq!(graph.walk_memo_len(), 0);
        let recold = generate_terms(&graph, &env, 6, &limits);
        assert_eq!(rendered(&recold), rendered(&cold));
        assert_eq!(recold.steps, cold.steps);
    }

    #[test]
    fn hole_type_interner_is_shared_across_edges() {
        let (_, _, graph) = both_walks(
            vec![
                Declaration::new("x", Ty::base("Int"), DeclKind::Local),
                Declaration::new(
                    "f",
                    Ty::fun(vec![Ty::base("Int"), Ty::base("Int")], Ty::base("Out")),
                    DeclKind::Local,
                ),
                Declaration::new(
                    "g",
                    Ty::fun(vec![Ty::base("Int")], Ty::base("Out")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("Out"),
            4,
            &GenerateLimits::default(),
        );
        // Int, Out and the goal are each interned once.
        assert!(graph.hole_ty(&Ty::base("Int")).is_some());
        assert!(graph.hole_ty(&Ty::base("Missing")).is_none());
        assert!(graph.hole_ty_count() <= 3);
    }
}
