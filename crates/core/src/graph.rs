//! The derivation graph: a pattern-indexed, reconstruction-ready view of the
//! derivable space.
//!
//! The pattern generation phase proves *which* `(environment, return type)`
//! goals are inhabited; reconstruction (Figure 10) then repeatedly asks how a
//! hole at such a goal can be filled. The flat pattern table answers that
//! query with hashing, interning and `Select` lookups in the innermost search
//! loop. A [`DerivationGraph`] moves all of that work out of the loop:
//!
//! * **nodes** are the goals of the [`PatternIndex`](insynth_succinct::PatternIndex)
//!   produced by [`generate_patterns`](crate::generate_patterns);
//! * **edges** are weighted applications: for every pattern of a goal, the
//!   `Select`-resolved declarations that realize it, each carrying its weight
//!   and the hole types of its arguments (pre-uncurried, pre-σ-lowered);
//! * a read-only **environment union table** resolves the environment at a
//!   hole without touching (or locking) any interner.
//!
//! [`generate_terms`] is then a pure best-first walk over the graph: no σ, no
//! interning, no string cloning, and two prunings the flat pipeline cannot do:
//!
//! * **dead-hole pruning** — a successor containing a hole whose goal has no
//!   node can never complete and is dropped at creation (with an exhaustive
//!   exploration every edge's holes are alive by construction, so this guards
//!   the truncated-prover-budget case);
//! * **branch-and-bound** — once `n` complete candidates are enqueued, any
//!   expression heavier than the current n-th best candidate is dropped
//!   (admissible because weights only grow along an expansion; disabled when
//!   a negative [`Declaration::with_weight`](crate::Declaration::with_weight)
//!   override breaks that monotonicity).
//!
//! Both prunings only discard expressions that could never be emitted, so the
//! returned terms are byte-identical to the unindexed reference walk
//! ([`generate_terms_unindexed`](crate::generate_terms_unindexed)); a property
//! test asserts exactly that.
//!
//! A graph is self-contained (it no longer borrows the per-query
//! [`ScratchStore`]), which is what lets a [`Session`](crate::Session) cache
//! it and answer repeated queries without re-running exploration or pattern
//! generation.
//!
//! # Example
//!
//! ```
//! use insynth_core::{
//!     explore, generate_patterns, generate_terms, Declaration, DeclKind, DerivationGraph,
//!     ExploreLimits, GenerateLimits, PreparedEnv, TypeEnv, WeightConfig,
//! };
//! use insynth_lambda::Ty;
//! use insynth_succinct::TypeStore;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("name", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "mkFile",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//! let weights = WeightConfig::default();
//! let prepared = PreparedEnv::prepare(&env, &weights);
//! let goal = Ty::base("File");
//! let mut store = prepared.scratch();
//! let goal_succ = store.sigma(&goal);
//! let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
//! let patterns = generate_patterns(&mut store, &space);
//! let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
//! let outcome = generate_terms(&graph, &env, 3, &GenerateLimits::default());
//! assert_eq!(outcome.terms[0].term.to_string(), "mkFile(name)");
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use insynth_intern::Symbol;
use insynth_lambda::{Param, Term, Ty};
use insynth_succinct::{EnvId, ScratchStore, SuccinctTyId, TypeStore};

use crate::decl::TypeEnv;
use crate::genp::PatternSet;
use crate::gent::{GenerateLimits, GenerateOutcome, RankedTerm, MAX_FRONTIER};
use crate::prepare::PreparedEnv;
use crate::weights::{Weight, WeightConfig};

/// Index of an interned hole type in a [`DerivationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HoleTyId(u32);

impl HoleTyId {
    fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// An interned hole type: a simple type together with everything the walk
/// needs to know about it, computed once at graph build time.
#[derive(Debug)]
struct HoleTy {
    /// The simple type itself (cloned into fresh binder parameters).
    ty: Ty,
    /// The final base return type (the goal a hole of this type asks for).
    ret: Symbol,
    /// Uncurried argument types, in order, duplicates kept — the fresh lambda
    /// binders a hole of this type introduces.
    args: Arc<[HoleTyId]>,
    /// The σ image of the type (for matching against edge `wanted` types).
    succ: SuccinctTyId,
    /// Sorted, de-duplicated σ images of `args` (the environment extension a
    /// hole of this type causes).
    arg_succs: Vec<SuccinctTyId>,
}

/// One declaration that can head an expansion.
#[derive(Debug)]
struct DeclEdge {
    /// Index into the original [`TypeEnv`].
    decl: u32,
    /// The declaration's weight under the graph's weight configuration.
    weight: Weight,
    /// Hole types of the declaration's uncurried arguments.
    args: Arc<[HoleTyId]>,
}

/// One pattern of a goal: the succinct type an expansion head must have, plus
/// the declarations `Select` resolves it to. Lambda binders in scope are
/// matched against `wanted` at walk time (they are not known at build time).
#[derive(Debug)]
struct Variant {
    wanted: SuccinctTyId,
    edges: Vec<DeclEdge>,
}

/// A goal node: the expansions of a hole at one `(environment, return type)`
/// pair, in derivation order.
#[derive(Debug, Default)]
struct Node {
    variants: Vec<Variant>,
}

/// The pattern-indexed derivation graph for one explored goal.
///
/// Built once per (program point, goal, prover budget) — see
/// [`DerivationGraph::build`] — and walked by [`generate_terms`]. The graph is
/// immutable, owns no borrows, and is `Send + Sync`, so sessions cache it
/// behind an `Arc` and serve concurrent queries from it.
#[derive(Debug)]
pub struct DerivationGraph {
    /// Goal nodes, in [`PatternIndex`](insynth_succinct::PatternIndex) goal order.
    nodes: Vec<Node>,
    goal_ids: HashMap<(EnvId, Symbol), u32>,
    tys: Vec<HoleTy>,
    ty_ids: HashMap<Ty, HoleTyId>,
    /// Environment member lists (base store + query overlay), indexed by raw
    /// `EnvId`, each sorted ascending — the read-only union table. The same
    /// `Arc` backs the id-indexed table and the reverse-lookup keys.
    envs: Vec<Arc<[SuccinctTyId]>>,
    env_ids: HashMap<Arc<[SuccinctTyId]>, EnvId>,
    init_env: EnvId,
    root_ty: HoleTyId,
    lambda_weight: Weight,
    /// `true` if every weight the walk can add is non-negative; only then is
    /// branch-and-bound pruning admissible.
    monotone: bool,
}

impl DerivationGraph {
    /// Builds the derivation graph for `goal` from a generated pattern set.
    ///
    /// `store` must be the scratch overlay the patterns were derived in (the
    /// graph snapshots its environment table and interns the few succinct
    /// types the patterns imply). After the build the graph is self-contained;
    /// the scratch can be dropped.
    pub fn build(
        prepared: &PreparedEnv,
        store: &mut ScratchStore<'_>,
        patterns: &PatternSet,
        env: &TypeEnv,
        weights: &WeightConfig,
        goal: &Ty,
    ) -> DerivationGraph {
        let mut tys: Vec<HoleTy> = Vec::new();
        let mut ty_ids: HashMap<Ty, HoleTyId> = HashMap::new();

        // Hole types of each declaration's uncurried arguments, shared by
        // every edge that declaration heads.
        let mut decl_args: Vec<Option<Arc<[HoleTyId]>>> = vec![None; env.len()];

        let index = patterns.index();
        let mut goal_ids = HashMap::with_capacity(index.goal_count());
        let mut nodes = Vec::with_capacity(index.goal_count());
        for goal_id in index.goals() {
            let (goal_env, ret) = index.goal_key(goal_id);
            goal_ids.insert((goal_env, ret), nodes.len() as u32);
            let mut variants = Vec::new();
            for pattern in index.patterns_of(goal_id) {
                let wanted = store.mk_ty(pattern.args.clone(), ret);
                let mut edges = Vec::new();
                for &decl_idx in prepared.select(wanted) {
                    if decl_args[decl_idx].is_none() {
                        let (rho, _) = env.decls()[decl_idx].ty.uncurry();
                        let args: Vec<HoleTyId> = rho
                            .iter()
                            .map(|t| intern_hole_ty(store, &mut tys, &mut ty_ids, t))
                            .collect();
                        decl_args[decl_idx] = Some(args.into());
                    }
                    edges.push(DeclEdge {
                        decl: decl_idx as u32,
                        weight: prepared.decl_weight[decl_idx],
                        args: decl_args[decl_idx].clone().expect("filled above"),
                    });
                }
                variants.push(Variant { wanted, edges });
            }
            nodes.push(Node { variants });
        }

        let root_ty = intern_hole_ty(store, &mut tys, &mut ty_ids, goal);

        // Snapshot the environment table after all interning is done, so the
        // union lookup sees every environment the walk can encounter.
        let env_count = store.env_count();
        let mut envs = Vec::with_capacity(env_count);
        let mut env_ids = HashMap::with_capacity(env_count);
        for raw in 0..env_count {
            let id = EnvId::from_index(raw as u32);
            let members: Arc<[SuccinctTyId]> = store.env_types(id).to_vec().into();
            env_ids.insert(Arc::clone(&members), id);
            envs.push(members);
        }

        let lambda_weight = weights.lambda_weight();
        let monotone = lambda_weight.is_non_negative()
            && prepared.decl_weight.iter().all(|w| w.is_non_negative());

        DerivationGraph {
            nodes,
            goal_ids,
            tys,
            ty_ids,
            envs,
            env_ids,
            init_env: prepared.init_env,
            root_ty,
            lambda_weight,
            monotone,
        }
    }

    /// Number of goal nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of declaration edges across all nodes.
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.variants.iter())
            .map(|v| v.edges.len())
            .sum()
    }

    /// Number of distinct hole types interned.
    pub fn hole_ty_count(&self) -> usize {
        self.tys.len()
    }

    /// The interned id of a hole type, if the graph knows it.
    pub fn hole_ty(&self, ty: &Ty) -> Option<HoleTyId> {
        self.ty_ids.get(ty).copied()
    }

    /// Resolves the goal of a hole of type `ty` in context environment `ctx`:
    /// the environment at the hole (context extended by the hole's own fresh
    /// binders) and its node, or `None` if the goal is uninhabited — in which
    /// case no expression containing such a hole can ever complete.
    fn resolve(&self, ctx: EnvId, ty: HoleTyId) -> Option<(EnvId, u32)> {
        let info = &self.tys[ty.as_usize()];
        let members = &self.envs[ctx.as_usize()];
        let env = if info
            .arg_succs
            .iter()
            .all(|t| members.binary_search(t).is_ok())
        {
            ctx
        } else {
            let mut merged = members.to_vec();
            merged.extend_from_slice(&info.arg_succs);
            merged.sort_unstable();
            merged.dedup();
            *self.env_ids.get(merged.as_slice())?
        };
        let node = *self.goal_ids.get(&(env, info.ret))?;
        Some((env, node))
    }
}

/// Recursively interns a simple type and its uncurried arguments as hole
/// types.
fn intern_hole_ty(
    store: &mut ScratchStore<'_>,
    tys: &mut Vec<HoleTy>,
    ty_ids: &mut HashMap<Ty, HoleTyId>,
    ty: &Ty,
) -> HoleTyId {
    if let Some(&id) = ty_ids.get(ty) {
        return id;
    }
    let (arg_tys, _) = ty.uncurry();
    let args: Vec<HoleTyId> = arg_tys
        .iter()
        .map(|a| intern_hole_ty(store, tys, ty_ids, a))
        .collect();
    let succ = store.sigma(ty);
    let ret = store.ret_of(succ);
    let mut arg_succs: Vec<SuccinctTyId> = args.iter().map(|&a| tys[a.as_usize()].succ).collect();
    arg_succs.sort_unstable();
    arg_succs.dedup();
    let id = HoleTyId(tys.len() as u32);
    tys.push(HoleTy {
        ty: ty.clone(),
        ret,
        args: args.into(),
        succ,
        arg_succs,
    });
    ty_ids.insert(ty.clone(), id);
    id
}

/// One memoized pattern of a goal node in a concrete environment: the
/// succinct head type binders are matched against, plus the surviving
/// (non-dead) declaration-headed successors.
struct CachedVariant {
    wanted: SuccinctTyId,
    edges: Vec<(Head, Weight, Arc<[HoleTyId]>)>,
}

/// The head of a partial-expression node.
#[derive(Debug, Clone)]
enum Head {
    /// A declaration, by index into the original environment.
    Decl(u32),
    /// A lambda binder in scope, by name.
    Binder(Rc<str>),
}

/// A partial expression over the graph. Subtrees are shared (`Rc`): replacing
/// the first hole rebuilds only the spine above it.
#[derive(Debug)]
enum PExpr {
    /// A typed hole together with the environment of its context (the initial
    /// environment extended by every binder on the path to the hole).
    Hole { ty: HoleTyId, ctx: EnvId },
    /// An application node `λ params . head(args…)`.
    Node {
        params: Rc<[(Param, HoleTyId)]>,
        head: Head,
        args: Vec<Rc<PExpr>>,
    },
}

/// Finds the first (leftmost, outermost-first) hole; `scope` is left holding
/// the binders on the path to it, and the returned depth counts its `Node`
/// ancestors.
fn find_first_hole<'a>(
    expr: &'a PExpr,
    scope: &mut Vec<&'a (Param, HoleTyId)>,
    depth: u32,
) -> Option<(HoleTyId, EnvId, u32)> {
    match expr {
        PExpr::Hole { ty, ctx } => Some((*ty, *ctx, depth)),
        PExpr::Node { params, args, .. } => {
            let mark = scope.len();
            scope.extend(params.iter());
            for a in args {
                if let Some(found) = find_first_hole(a, scope, depth + 1) {
                    return Some(found);
                }
            }
            scope.truncate(mark);
            None
        }
    }
}

/// Replaces the first hole of `expr` by `replacement`, sharing every
/// untouched subtree.
fn replace_first_hole(expr: &Rc<PExpr>, replacement: &Rc<PExpr>, done: &mut bool) -> Rc<PExpr> {
    if *done {
        return Rc::clone(expr);
    }
    match &**expr {
        PExpr::Hole { .. } => {
            *done = true;
            Rc::clone(replacement)
        }
        PExpr::Node { params, head, args } => {
            let new_args: Vec<Rc<PExpr>> = args
                .iter()
                .map(|a| replace_first_hole(a, replacement, done))
                .collect();
            Rc::new(PExpr::Node {
                params: Rc::clone(params),
                head: head.clone(),
                args: new_args,
            })
        }
    }
}

/// Converts a hole-free expression to a term, resolving declaration heads
/// against the original environment.
fn to_term(expr: &PExpr, env: &TypeEnv) -> Term {
    match expr {
        PExpr::Hole { .. } => unreachable!("complete expressions have no holes"),
        PExpr::Node { params, head, args } => Term {
            params: params.iter().map(|(p, _)| p.clone()).collect(),
            head: match head {
                Head::Decl(i) => env.decls()[*i as usize].name.clone(),
                Head::Binder(name) => name.to_string(),
            },
            args: args.iter().map(|a| to_term(a, env)).collect(),
        },
    }
}

/// Priority-queue entry: lighter partial expressions first, FIFO among
/// equals. `holes` and `depth` are maintained incrementally so completeness
/// and depth checks are O(1).
struct Entry {
    weight: Reverse<Weight>,
    seq: Reverse<u64>,
    expr: Rc<PExpr>,
    holes: u32,
    depth: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.weight, self.seq).cmp(&(other.weight, other.seq))
    }
}

/// Runs best-first term reconstruction over a derivation graph.
///
/// The returned terms are byte-identical (same terms, same weights, same
/// order) to what [`generate_terms_unindexed`](crate::generate_terms_unindexed)
/// produces from the same pattern set; the graph walk only avoids work that
/// cannot influence the output. `outcome.steps` counts useful queue pops and
/// is therefore typically much smaller than the unindexed walk's.
pub fn generate_terms(
    graph: &DerivationGraph,
    env: &TypeEnv,
    n: usize,
    limits: &GenerateLimits,
) -> GenerateOutcome {
    let start = Instant::now();
    let mut outcome = GenerateOutcome::default();
    if n == 0 {
        return outcome;
    }

    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    queue.push(Entry {
        weight: Reverse(Weight::ZERO),
        seq: Reverse(seq),
        expr: Rc::new(PExpr::Hole {
            ty: graph.root_ty,
            ctx: graph.init_env,
        }),
        holes: 1,
        depth: 1,
    });

    // Goal resolution memo: holes with the same (context, type) repeat
    // constantly during the walk.
    let mut memo: HashMap<(EnvId, HoleTyId), Option<(EnvId, u32)>> = HashMap::new();
    // Expansion memo: the declaration-headed successors of a goal node in a
    // given environment, with dead edges already filtered out. Binder-headed
    // successors depend on the scope at the hole and are enumerated per pop.
    let mut expansions: HashMap<(EnvId, u32), Rc<Vec<CachedVariant>>> = HashMap::new();
    // Branch-and-bound: the weights of the n best complete candidates
    // enqueued so far (max-heap). Once full, anything strictly heavier than
    // the top can never be emitted.
    let mut candidates: BinaryHeap<Weight> = BinaryHeap::new();

    'search: while let Some(entry) = queue.pop() {
        if outcome.terms.len() >= n {
            break;
        }
        if outcome.steps >= limits.max_steps {
            outcome.truncated = true;
            break;
        }
        if let Some(limit) = limits.time_limit {
            if start.elapsed() > limit {
                outcome.truncated = true;
                break;
            }
        }
        outcome.steps += 1;

        if entry.holes == 0 {
            outcome.terms.push(RankedTerm {
                term: to_term(&entry.expr, env),
                weight: entry.weight.0,
            });
            continue;
        }

        // A partial expression heavier than the n-th best complete candidate
        // cannot contribute output; skip its expansion.
        if graph.monotone && candidates.len() >= n {
            if let Some(&bound) = candidates.peek() {
                if entry.weight.0 > bound {
                    continue;
                }
            }
        }

        let mut scope: Vec<&(Param, HoleTyId)> = Vec::new();
        let (hole_ty, ctx, ancestors) = find_first_hole(&entry.expr, &mut scope, 0)
            .expect("entry with holes > 0 contains a hole");
        let resolved = *memo
            .entry((ctx, hole_ty))
            .or_insert_with(|| graph.resolve(ctx, hole_ty));
        let Some((node_env, node)) = resolved else {
            // Dead hole (only reachable from the root; successors containing
            // dead holes are pruned at creation).
            continue;
        };

        let info = &graph.tys[hole_ty.as_usize()];
        let fresh: Vec<(Param, HoleTyId)> = info
            .args
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let ty = graph.tys[a.as_usize()].ty.clone();
                (Param::new(format!("var{}", scope.len() + i + 1), ty), a)
            })
            .collect();
        let params_weight = Weight::new(graph.lambda_weight.value() * fresh.len() as f64);
        let params: Rc<[(Param, HoleTyId)]> = fresh.into();

        // Declaration-headed successors of this (environment, goal) pair,
        // dead-checked once and reused by every later pop of the same pair.
        let cached = match expansions.get(&(node_env, node)) {
            Some(cached) => Rc::clone(cached),
            None => {
                let built: Vec<CachedVariant> = graph.nodes[node as usize]
                    .variants
                    .iter()
                    .map(|variant| CachedVariant {
                        wanted: variant.wanted,
                        edges: variant
                            .edges
                            .iter()
                            .filter(|edge| {
                                // Dead-hole pruning: an edge whose argument
                                // goals include an uninhabited one can never
                                // complete, in this environment or any
                                // extension reached through this hole.
                                edge.args.iter().all(|&a| {
                                    memo.entry((node_env, a))
                                        .or_insert_with(|| graph.resolve(node_env, a))
                                        .is_some()
                                })
                            })
                            .map(|edge| (Head::Decl(edge.decl), edge.weight, edge.args.clone()))
                            .collect(),
                    })
                    .collect();
                let built = Rc::new(built);
                expansions.insert((node_env, node), Rc::clone(&built));
                built
            }
        };

        let mut produced = 0usize;
        'expand: for variant in cached.iter() {
            // Declaration heads first, then binders in scope order — the
            // enumeration order of the unindexed walk.
            let decl_heads = variant
                .edges
                .iter()
                .map(|(head, weight, args)| (head.clone(), *weight, args.clone()));
            let binder_heads = scope
                .iter()
                .copied()
                .chain(params.iter())
                .filter(|(_, ty)| graph.tys[ty.as_usize()].succ == variant.wanted)
                .map(|(param, ty)| {
                    (
                        Head::Binder(Rc::from(param.name.as_str())),
                        graph.lambda_weight,
                        Arc::clone(&graph.tys[ty.as_usize()].args),
                    )
                });

            for (head, head_weight, arg_tys) in decl_heads.chain(binder_heads) {
                produced += 1;
                // Re-check the wall-clock budget periodically so one step
                // cannot overshoot the reconstruction limit.
                if produced.is_multiple_of(128) {
                    if let Some(limit) = limits.time_limit {
                        if start.elapsed() > limit {
                            outcome.truncated = true;
                            break 'search;
                        }
                    }
                }
                if queue.len() >= MAX_FRONTIER {
                    // Stop enqueueing for this pop only — like the unindexed
                    // walk, the queue keeps draining so completions already
                    // enqueued are still emitted.
                    outcome.truncated = true;
                    break 'expand;
                }

                let new_weight = entry.weight.0.plus(params_weight.plus(head_weight));
                if graph.monotone && candidates.len() >= n {
                    if let Some(&bound) = candidates.peek() {
                        if new_weight > bound {
                            continue;
                        }
                    }
                }

                // Depth: the only lengthened path runs through the hole.
                let replacement_depth = if arg_tys.is_empty() { 1 } else { 2 };
                let new_depth = entry.depth.max(ancestors + replacement_depth);
                if let Some(max_depth) = limits.max_depth {
                    if new_depth as usize > max_depth {
                        continue;
                    }
                }

                // Dead-hole pruning for binder-headed successors (declaration
                // edges were checked when the cached expansion was built).
                if matches!(head, Head::Binder(_)) {
                    let dead = arg_tys.iter().any(|&a| {
                        memo.entry((node_env, a))
                            .or_insert_with(|| graph.resolve(node_env, a))
                            .is_none()
                    });
                    if dead {
                        continue;
                    }
                }

                let new_holes = entry.holes - 1 + arg_tys.len() as u32;
                if graph.monotone && new_holes == 0 {
                    if candidates.len() < n {
                        candidates.push(new_weight);
                    } else if let Some(mut top) = candidates.peek_mut() {
                        if new_weight < *top {
                            *top = new_weight;
                        }
                    }
                }

                let replacement = Rc::new(PExpr::Node {
                    params: Rc::clone(&params),
                    head,
                    args: arg_tys
                        .iter()
                        .map(|&a| {
                            Rc::new(PExpr::Hole {
                                ty: a,
                                ctx: node_env,
                            })
                        })
                        .collect(),
                });
                let mut done = false;
                let new_expr = replace_first_hole(&entry.expr, &replacement, &mut done);
                debug_assert!(done, "expansion must replace the located hole");
                seq += 1;
                queue.push(Entry {
                    weight: Reverse(new_weight),
                    seq: Reverse(seq),
                    expr: new_expr,
                    holes: new_holes,
                    depth: new_depth,
                });
            }
        }
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use crate::explore::{explore, ExploreLimits};
    use crate::genp::generate_patterns;
    use crate::gent::generate_terms_unindexed;

    /// Runs both reconstruction paths on the same pattern set and returns
    /// `(graph walk, unindexed reference, graph)`.
    fn both_walks(
        decls: Vec<Declaration>,
        goal: Ty,
        n: usize,
        limits: &GenerateLimits,
    ) -> (GenerateOutcome, GenerateOutcome, DerivationGraph) {
        let env: TypeEnv = decls.into_iter().collect();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let reference = generate_terms_unindexed(
            &prepared, &mut store, &patterns, &env, &weights, &goal, n, limits,
        );
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
        let walked = generate_terms(&graph, &env, n, limits);
        (walked, reference, graph)
    }

    fn rendered(outcome: &GenerateOutcome) -> Vec<(String, u64)> {
        outcome
            .terms
            .iter()
            .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
            .collect()
    }

    #[test]
    fn graph_walk_matches_reference_on_higher_order_goal() {
        let (walked, reference, graph) = both_walks(
            vec![
                Declaration::new(
                    "traverser",
                    Ty::fun(
                        vec![Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))],
                        Ty::base("Traverser"),
                    ),
                    DeclKind::Imported,
                ),
                Declaration::new(
                    "p",
                    Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("Traverser"),
            5,
            &GenerateLimits::default(),
        );
        assert_eq!(rendered(&walked), rendered(&reference));
        assert_eq!(
            walked.terms[0].term.to_string(),
            "traverser(var1 => p(var1))"
        );
        assert!(graph.node_count() >= 2);
        assert!(graph.edge_count() >= 2);
    }

    #[test]
    fn negative_weight_overrides_disable_pruning_but_keep_results_identical() {
        // A negative override makes weights non-monotone along expansions;
        // the walk must detect that, fall back to unpruned search and still
        // agree with the reference byte for byte.
        let decls = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            )
            .with_weight(-2.0),
        ];
        let limits = GenerateLimits {
            max_depth: Some(4),
            ..GenerateLimits::default()
        };
        let (walked, reference, graph) = both_walks(decls, Ty::base("A"), 8, &limits);
        assert!(!graph.monotone);
        assert_eq!(rendered(&walked), rendered(&reference));
    }

    #[test]
    fn uninhabited_branches_never_become_graph_edges() {
        // `f : B -> A` is a dead end (B uninhabited); `g : C -> A` with
        // `c : C` works. No pattern is derived for the f branch, so `Select`
        // never resolves it into an edge — the graph only contains the g
        // chain, and the walk agrees with the reference byte for byte.
        let decls = vec![
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new(
                "g",
                Ty::fun(vec![Ty::base("C")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new("c", Ty::base("C"), DeclKind::Local),
        ];
        let (walked, reference, graph) =
            both_walks(decls, Ty::base("A"), 10, &GenerateLimits::default());
        assert_eq!(rendered(&walked), rendered(&reference));
        assert_eq!(walked.terms.len(), 1);
        assert_eq!(walked.terms[0].term.to_string(), "g(c)");
        // Two goal nodes (A and C), one edge each: g for A, c for C. The f
        // declaration appears nowhere.
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 2);
        // The pruned walk never pops more than the reference.
        assert!(walked.steps <= reference.steps);
    }

    #[test]
    fn zero_n_short_circuits() {
        let (walked, _, _) = both_walks(
            vec![Declaration::new("a", Ty::base("A"), DeclKind::Local)],
            Ty::base("A"),
            0,
            &GenerateLimits::default(),
        );
        assert!(walked.terms.is_empty());
        assert_eq!(walked.steps, 0);
    }

    #[test]
    fn hole_type_interner_is_shared_across_edges() {
        let (_, _, graph) = both_walks(
            vec![
                Declaration::new("x", Ty::base("Int"), DeclKind::Local),
                Declaration::new(
                    "f",
                    Ty::fun(vec![Ty::base("Int"), Ty::base("Int")], Ty::base("Out")),
                    DeclKind::Local,
                ),
                Declaration::new(
                    "g",
                    Ty::fun(vec![Ty::base("Int")], Ty::base("Out")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("Out"),
            4,
            &GenerateLimits::default(),
        );
        // Int, Out and the goal are each interned once.
        assert!(graph.hole_ty(&Ty::base("Int")).is_some());
        assert!(graph.hole_ty(&Ty::base("Missing")).is_none());
        assert!(graph.hole_ty_count() <= 3);
    }
}
