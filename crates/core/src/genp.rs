//! The pattern generation phase (Figures 8 and 9).
//!
//! Starting from the reachability terms discovered by exploration, the phase
//! repeatedly applies TRANSFER (an argument type is discharged once it is
//! known to be inhabited) and PROD (a fully discharged term produces a
//! pattern). Two implementations are provided:
//!
//! * [`generate_patterns`] — the production implementation, using the
//!   "backward map" optimization of §5.7: every pending argument registers a
//!   waiter keyed by the (return type, extended environment) pair that would
//!   discharge it, so completing a term notifies exactly the terms that can
//!   make progress.
//! * [`generate_patterns_naive`] — a direct saturation of the PROD/TRANSFER
//!   rules, used by tests to cross-check the optimized version.

use std::collections::HashMap;

use insynth_intern::Symbol;
use insynth_succinct::{
    prod_rule, transfer_rule, EnvId, Pattern, PatternIndex, ReachabilityTerm, ScratchStore,
    TypeStore,
};

use crate::explore::SearchSpace;

/// The output of the pattern generation phase: a [`PatternIndex`] from
/// `(environment, return type)` goals to the patterns that inhabit them.
///
/// The derivation graph of the reconstruction pipeline is built directly from
/// the index (see [`DerivationGraph::build`](crate::DerivationGraph::build));
/// the thin wrapper here exists so the pattern phase can evolve its
/// bookkeeping without leaking `insynth_succinct` internals into every
/// consumer.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    index: PatternIndex,
}

impl PatternSet {
    /// The underlying goal-indexed pattern table.
    pub fn index(&self) -> &PatternIndex {
        &self.index
    }

    /// All patterns, in derivation order.
    pub fn patterns(&self) -> &[Pattern] {
        self.index.patterns()
    }

    /// Number of patterns derived.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if no pattern was derived.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The patterns usable to fill a hole of base type `ret` in environment
    /// `env` (the lookup performed by GenerateT, Figure 10).
    pub fn lookup(&self, env: EnvId, ret: Symbol) -> impl Iterator<Item = &Pattern> {
        self.index.lookup(env, ret)
    }

    /// Returns `true` if base type `ret` is known to be inhabited in `env`.
    pub fn is_inhabited(&self, ret: Symbol, env: EnvId) -> bool {
        self.index.is_inhabited(ret, env)
    }

    /// All `(base type, environment)` pairs known to be inhabited.
    pub fn inhabited_pairs(&self) -> impl Iterator<Item = (Symbol, EnvId)> + '_ {
        self.index.inhabited_pairs()
    }

    fn insert(&mut self, pattern: Pattern) -> bool {
        self.index.insert(pattern)
    }
}

/// Generates the pattern set from an explored search space using the backward
/// waiter map of §5.7.
///
/// # Example
///
/// ```
/// use insynth_core::{explore, generate_patterns, Declaration, DeclKind, ExploreLimits, PreparedEnv, TypeEnv, WeightConfig};
/// use insynth_lambda::Ty;
/// use insynth_succinct::TypeStore;
///
/// let env: TypeEnv = vec![
///     Declaration::simple("a", Ty::base("Int"), DeclKind::Local),
///     Declaration::simple(
///         "f",
///         Ty::fun(vec![Ty::base("Int"), Ty::base("Int"), Ty::base("Int")], Ty::base("String")),
///         DeclKind::Imported,
///     ),
/// ]
/// .into_iter()
/// .collect();
/// let prepared = PreparedEnv::prepare(&env, &WeightConfig::default());
/// let mut store = prepared.scratch();
/// let goal = store.sigma(&Ty::base("String"));
/// let space = explore(&prepared, &mut store, goal, &ExploreLimits::default());
/// let patterns = generate_patterns(&mut store, &space);
/// assert_eq!(patterns.len(), 2); // Γ@{} : Int and Γ@{Int} : String
/// ```
pub fn generate_patterns(store: &mut ScratchStore<'_>, space: &SearchSpace) -> PatternSet {
    let terms = &space.terms;

    // For each pending argument of each term, the (ret, env) key that will
    // discharge it once inhabited.
    let mut waiters: HashMap<(Symbol, EnvId), Vec<usize>> = HashMap::new();
    let mut remaining: Vec<usize> = Vec::with_capacity(terms.len());
    let mut worklist: Vec<usize> = Vec::new();

    for (idx, term) in terms.iter().enumerate() {
        remaining.push(term.remaining.len());
        if term.remaining.is_empty() {
            worklist.push(idx);
            continue;
        }
        for &arg in &term.remaining {
            let arg_args = store.args_of(arg).to_vec();
            let extended = store.env_union(term.env, &arg_args);
            let key = (store.ret_of(arg), extended);
            waiters.entry(key).or_default().push(idx);
        }
    }

    let mut set = PatternSet::default();
    let mut produced: Vec<bool> = vec![false; terms.len()];

    while let Some(idx) = worklist.pop() {
        if produced[idx] {
            continue;
        }
        produced[idx] = true;
        let term = &terms[idx];
        let key = (term.ret, term.env);
        let newly_inhabited = !set.is_inhabited(term.ret, term.env);
        set.insert(completed_pattern(store, term));

        if newly_inhabited {
            if let Some(waiting) = waiters.get(&key) {
                for &j in waiting {
                    remaining[j] -= 1;
                    if remaining[j] == 0 {
                        worklist.push(j);
                    }
                }
            }
        }
    }

    set
}

/// A direct saturation of the PROD / TRANSFER rules of Figure 8, without the
/// backward map. Quadratic; intended for cross-checking on small inputs.
pub fn generate_patterns_naive(store: &mut ScratchStore<'_>, space: &SearchSpace) -> PatternSet {
    let mut terms: Vec<ReachabilityTerm> = space.terms.clone();
    let mut set = PatternSet::default();

    loop {
        let mut changed = false;

        // PROD on every fully-witnessed term.
        let leaves: Vec<(Symbol, EnvId)> = terms
            .iter()
            .filter(|t| t.is_leaf())
            .map(|t| {
                if set.insert(prod_rule(t)) {
                    changed = true;
                }
                (t.ret, t.env)
            })
            .collect();

        // TRANSFER every pending argument that some leaf witnesses.
        let mut next: Vec<ReachabilityTerm> = Vec::with_capacity(terms.len());
        for term in &terms {
            if term.is_leaf() {
                next.push(term.clone());
                continue;
            }
            let mut current = term.clone();
            for &(leaf_ret, leaf_env) in &leaves {
                let args: Vec<_> = current.remaining.clone();
                for arg in args {
                    if let Some(new_term) = transfer_rule(store, &current, arg, leaf_ret, leaf_env)
                    {
                        current = new_term;
                        changed = true;
                    }
                }
            }
            next.push(current);
        }
        terms = next;

        if !changed {
            break;
        }
    }

    set
}

fn completed_pattern<S: TypeStore>(store: &S, term: &ReachabilityTerm) -> Pattern {
    // A completed term's Π is the full argument set of its matched member.
    Pattern::new(term.env, store.args_of(term.decl_ty).to_vec(), term.ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration, TypeEnv};
    use crate::explore::{explore, ExploreLimits};
    use crate::prepare::PreparedEnv;
    use crate::weights::WeightConfig;
    use insynth_lambda::Ty;
    use std::collections::HashSet;

    /// Prepares the environment, explores towards `goal` and hands the
    /// prepared environment, the query-local store and both pattern sets to
    /// the assertion closure.
    fn run_with<R>(
        decls: Vec<Declaration>,
        goal: Ty,
        f: impl FnOnce(&PreparedEnv, &mut ScratchStore<'_>, PatternSet, PatternSet) -> R,
    ) -> R {
        let env: TypeEnv = decls.into_iter().collect();
        let prepared = PreparedEnv::prepare(&env, &WeightConfig::default());
        let mut store = prepared.scratch();
        let goal = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal, &ExploreLimits::default());
        let fast = generate_patterns(&mut store, &space);
        let naive = generate_patterns_naive(&mut store, &space);
        f(&prepared, &mut store, fast, naive)
    }

    fn as_set(p: &PatternSet) -> HashSet<Pattern> {
        p.patterns().iter().cloned().collect()
    }

    #[test]
    fn paper_example_produces_both_patterns() {
        run_with(
            vec![
                Declaration::new("a", Ty::base("Int"), DeclKind::Local),
                Declaration::new(
                    "f",
                    Ty::fun(
                        vec![Ty::base("Int"), Ty::base("Int"), Ty::base("Int")],
                        Ty::base("String"),
                    ),
                    DeclKind::Imported,
                ),
            ],
            Ty::base("String"),
            |_, store, fast, _| {
                let rendered: HashSet<String> =
                    fast.patterns().iter().map(|p| p.render(store)).collect();
                assert!(rendered.contains("{Int, {Int} -> String}@{} : Int"));
                assert!(rendered.contains("{Int, {Int} -> String}@{Int} : String"));
                assert_eq!(fast.len(), 2);
            },
        )
    }

    #[test]
    fn optimized_and_naive_agree_on_simple_chains() {
        run_with(
            vec![
                Declaration::new("c", Ty::base("C"), DeclKind::Local),
                Declaration::new(
                    "g",
                    Ty::fun(vec![Ty::base("C")], Ty::base("B")),
                    DeclKind::Local,
                ),
                Declaration::new(
                    "f",
                    Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("A"),
            |_, _, fast, naive| {
                assert_eq!(as_set(&fast), as_set(&naive));
                assert_eq!(fast.len(), 3);
            },
        )
    }

    #[test]
    fn optimized_and_naive_agree_with_higher_order_arguments() {
        run_with(
            vec![
                Declaration::new(
                    "traverser",
                    Ty::fun(
                        vec![Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))],
                        Ty::base("Traverser"),
                    ),
                    DeclKind::Imported,
                ),
                Declaration::new(
                    "p",
                    Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("Traverser"),
            |_, _, fast, naive| {
                assert_eq!(as_set(&fast), as_set(&naive));
                // Traverser pattern + Boolean pattern in the Tree-extended environment.
                assert!(fast.len() >= 2);
            },
        )
    }

    #[test]
    fn uninhabited_goal_produces_no_goal_pattern() {
        // f : B -> A but B has no inhabitant: no pattern for A may be derived.
        run_with(
            vec![Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            )],
            Ty::base("A"),
            |prepared, store, fast, naive| {
                let a = store.base_symbol("A");
                assert!(!fast.is_inhabited(a, prepared.init_env));
                assert!(fast.is_empty());
                assert!(naive.is_empty());
            },
        )
    }

    #[test]
    fn recursive_types_reach_a_fixpoint() {
        run_with(
            vec![
                Declaration::new(
                    "f",
                    Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                    DeclKind::Local,
                ),
                Declaration::new("a", Ty::base("A"), DeclKind::Local),
            ],
            Ty::base("A"),
            |_, _, fast, naive| {
                assert_eq!(as_set(&fast), as_set(&naive));
                // Γ@{} : A (from a) and Γ@{A} : A (from f).
                assert_eq!(fast.len(), 2);
            },
        )
    }

    #[test]
    fn lookup_finds_patterns_by_environment_and_return_type() {
        run_with(
            vec![
                Declaration::new("a", Ty::base("Int"), DeclKind::Local),
                Declaration::new(
                    "f",
                    Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
                    DeclKind::Local,
                ),
            ],
            Ty::base("String"),
            |prepared, store, fast, _| {
                let string = store.base_symbol("String");
                let found: Vec<_> = fast.lookup(prepared.init_env, string).collect();
                assert_eq!(found.len(), 1);
                assert_eq!(found[0].args.len(), 1);
            },
        )
    }
}
