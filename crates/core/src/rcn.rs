//! The reference reconstruction functions CL and RCN of Figure 4.
//!
//! These are direct, unoptimized transcriptions of the paper's specification:
//! `RCN(Γo, τ, d)` returns *every* term in long normal form of type τ up to
//! depth `d`. They are exponential and intended purely as the oracle against
//! which the production engine ([`crate::Synthesizer`]) is cross-checked in
//! the soundness/completeness tests (Theorem 3.3).

use std::collections::{HashMap, HashSet};

use insynth_intern::Symbol;
use insynth_lambda::{Param, Term, Ty};
use insynth_succinct::{EnvId, SuccinctStore, SuccinctTyId};

use crate::decl::{DeclKind, Declaration, TypeEnv};

/// A saturation-based derivability oracle for the succinct calculus `⊢c`.
struct DerivOracle {
    store: SuccinctStore,
    /// `(base type, environment)` pairs known to be inhabited.
    inhabited: HashSet<(Symbol, EnvId)>,
    /// Every environment reachable from the root by argument-set extension.
    envs: Vec<EnvId>,
}

impl DerivOracle {
    fn new(mut store: SuccinctStore, root: EnvId) -> Self {
        // Close the set of relevant environments under extension by the
        // argument sets of member types (and of their arguments, recursively).
        let mut envs = vec![root];
        let mut seen: HashSet<EnvId> = envs.iter().copied().collect();
        let mut cursor = 0;
        while cursor < envs.len() {
            let env = envs[cursor];
            cursor += 1;
            let members = store.env_types(env).to_vec();
            let mut arg_types: Vec<SuccinctTyId> = Vec::new();
            for m in members {
                arg_types.extend(store.args_of(m).iter().copied());
            }
            // Also close under the arguments of argument types (higher-order).
            let mut all_args = arg_types.clone();
            let mut i = 0;
            while i < all_args.len() {
                let t = all_args[i];
                i += 1;
                for &a in store.args_of(t) {
                    if !all_args.contains(&a) {
                        all_args.push(a);
                    }
                }
            }
            for t in all_args {
                let extension = store.args_of(t).to_vec();
                let extended = store.env_union(env, &extension);
                if seen.insert(extended) {
                    envs.push(extended);
                }
            }
        }

        let mut oracle = DerivOracle {
            store,
            inhabited: HashSet::new(),
            envs,
        };
        oracle.saturate();
        oracle
    }

    /// Iterates the APP rule of Figure 3 to a fixpoint over the closed set of
    /// environments.
    fn saturate(&mut self) {
        loop {
            let mut changed = false;
            for &env in &self.envs.clone() {
                let members = self.store.env_types(env).to_vec();
                for m in members {
                    let ret = self.store.ret_of(m);
                    if self.inhabited.contains(&(ret, env)) {
                        continue;
                    }
                    let args = self.store.args_of(m).to_vec();
                    let all_derivable = args.iter().all(|&a| self.derivable(env, a));
                    if all_derivable {
                        self.inhabited.insert((ret, env));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// `Γ ⊢c t`: the (possibly functional) succinct type `t` is derivable in
    /// `env` iff its return type is inhabited in `env ∪ A(t)`.
    fn derivable(&mut self, env: EnvId, ty: SuccinctTyId) -> bool {
        let args = self.store.args_of(ty).to_vec();
        let extended = self.store.env_union(env, &args);
        self.inhabited.contains(&(self.store.ret_of(ty), extended))
    }

    /// The CL function of Figure 4: every argument set `S1` of a member
    /// `S1 → t` of `env` whose members are all derivable in `env`.
    fn cl(&mut self, env: EnvId, ret: Symbol) -> Vec<Vec<SuccinctTyId>> {
        let members = self.store.env_types(env).to_vec();
        let mut out = Vec::new();
        for m in members {
            if self.store.ret_of(m) != ret {
                continue;
            }
            let args = self.store.args_of(m).to_vec();
            if args.iter().all(|&a| self.derivable(env, a)) {
                out.push(args);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// The reference `RCN(Γo, τ, d)`: all terms in long normal form of type `goal`
/// and depth at most `depth`, derived exactly as specified in Figure 4.
///
/// The output is de-duplicated and sorted by rendering, so that it can be
/// compared set-wise against the engine's output in tests.
///
/// # Example
///
/// ```
/// use insynth_core::{rcn, Declaration, DeclKind, TypeEnv};
/// use insynth_lambda::Ty;
///
/// let env: TypeEnv = vec![
///     Declaration::simple("a", Ty::base("A"), DeclKind::Local),
///     Declaration::simple("s", Ty::fun(vec![Ty::base("A")], Ty::base("A")), DeclKind::Local),
/// ]
/// .into_iter()
/// .collect();
/// let terms = rcn(&env, &Ty::base("A"), 2);
/// let rendered: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
/// assert_eq!(rendered, vec!["a", "s(a)"]);
/// ```
pub fn rcn(env: &TypeEnv, goal: &Ty, depth: usize) -> Vec<Term> {
    let mut counter = 0usize;
    let mut terms = rcn_rec(env.clone(), goal, depth, &mut counter);
    terms.sort_by_key(Term::to_string);
    terms.dedup();
    terms
}

/// Reference inhabitation check: is there *any* term of type `goal` under
/// `env`? Decided by saturating the succinct calculus, independently of the
/// engine's exploration phase.
pub fn is_inhabited_ref(env: &TypeEnv, goal: &Ty) -> bool {
    let mut store = SuccinctStore::new();
    let decl_succ: Vec<SuccinctTyId> = env.iter().map(|d| store.sigma(&d.ty)).collect();
    let root = store.mk_env(decl_succ);
    let goal_succ = store.sigma(goal);
    let goal_args = store.args_of(goal_succ).to_vec();
    let extended = store.env_union(root, &goal_args);
    let goal_ret = store.ret_of(goal_succ);
    let oracle = DerivOracle::new(store, extended);
    oracle.inhabited.contains(&(goal_ret, extended))
}

fn rcn_rec(env: TypeEnv, goal: &Ty, depth: usize, counter: &mut usize) -> Vec<Term> {
    if depth == 0 {
        return Vec::new();
    }

    let (arg_tys, _) = goal.uncurry();
    // Fresh binders x1 : τ1 … xn : τn.
    let binders: Vec<Param> = arg_tys
        .iter()
        .map(|t| {
            *counter += 1;
            Param::new(format!("x{counter}"), (*t).clone())
        })
        .collect();

    // Γ'o := Γo ∪ {x1 : τ1, …, xn : τn}
    let mut extended = env;
    for b in &binders {
        extended.push(Declaration::new(
            b.name.clone(),
            b.ty.clone(),
            DeclKind::Lambda,
        ));
    }

    // Build the succinct view of Γ'o and query CL for the goal's return type.
    let mut store = SuccinctStore::new();
    let decl_succ: Vec<SuccinctTyId> = extended.iter().map(|d| store.sigma(&d.ty)).collect();
    let succ_env = store.mk_env(decl_succ.clone());
    let goal_ret_name = goal.result_base().to_owned();
    let goal_ret = store.base_symbol(&goal_ret_name);
    let mut oracle = DerivOracle::new(store, succ_env);
    let arg_sets = oracle.cl(succ_env, goal_ret);

    // Select declarations matching each pattern and recurse on their argument
    // types.
    let mut by_succ: HashMap<SuccinctTyId, Vec<usize>> = HashMap::new();
    for (idx, d) in extended.iter().enumerate() {
        let s = oracle.store.sigma(&d.ty);
        by_succ.entry(s).or_default().push(idx);
    }

    let mut terms = Vec::new();
    for args_set in arg_sets {
        let wanted = oracle.store.mk_ty(args_set, goal_ret);
        let Some(decl_indices) = by_succ.get(&wanted) else {
            continue;
        };
        for &idx in decl_indices {
            let decl = extended.decls()[idx].clone();
            let (rho, _) = decl.ty.uncurry();
            if rho.is_empty() {
                terms.push(Term {
                    params: binders.clone(),
                    head: decl.name.clone(),
                    args: Vec::new(),
                });
                continue;
            }
            // Cartesian product of the sub-term sets T1 × … × Tm.
            let sub_sets: Vec<Vec<Term>> = rho
                .iter()
                .map(|r| rcn_rec(extended.clone(), r, depth - 1, counter))
                .collect();
            if sub_sets.iter().any(Vec::is_empty) {
                continue;
            }
            for combo in cartesian(&sub_sets) {
                terms.push(Term {
                    params: binders.clone(),
                    head: decl.name.clone(),
                    args: combo,
                });
            }
        }
    }
    terms
}

fn cartesian(sets: &[Vec<Term>]) -> Vec<Vec<Term>> {
    let mut out: Vec<Vec<Term>> = vec![Vec::new()];
    for set in sets {
        let mut next = Vec::with_capacity(out.len() * set.len());
        for prefix in &out {
            for item in set {
                let mut extended = prefix.clone();
                extended.push(item.clone());
                next.push(extended);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_lambda::check;

    fn env(decls: Vec<(&str, Ty)>) -> TypeEnv {
        decls
            .into_iter()
            .map(|(n, t)| Declaration::new(n, t, DeclKind::Local))
            .collect()
    }

    #[test]
    fn depth_zero_returns_nothing() {
        let e = env(vec![("a", Ty::base("A"))]);
        assert!(rcn(&e, &Ty::base("A"), 0).is_empty());
    }

    #[test]
    fn depth_one_returns_only_variables() {
        let e = env(vec![
            ("a", Ty::base("A")),
            ("s", Ty::fun(vec![Ty::base("A")], Ty::base("A"))),
        ]);
        let terms = rcn(&e, &Ty::base("A"), 1);
        let rendered: Vec<String> = terms.iter().map(Term::to_string).collect();
        assert_eq!(rendered, vec!["a"]);
    }

    #[test]
    fn enumerates_all_terms_up_to_depth() {
        let e = env(vec![
            ("a", Ty::base("A")),
            ("s", Ty::fun(vec![Ty::base("A")], Ty::base("A"))),
        ]);
        let terms = rcn(&e, &Ty::base("A"), 3);
        let rendered: HashSet<String> = terms.iter().map(Term::to_string).collect();
        assert_eq!(
            rendered,
            HashSet::from(["a".to_owned(), "s(a)".to_owned(), "s(s(a))".to_owned()])
        );
    }

    #[test]
    fn every_returned_term_type_checks() {
        let e = env(vec![
            ("x", Ty::base("Int")),
            (
                "plus",
                Ty::fun(vec![Ty::base("Int"), Ty::base("Int")], Ty::base("Int")),
            ),
        ]);
        let goal = Ty::base("Int");
        let bindings = e.to_bindings();
        for t in rcn(&e, &goal, 3) {
            check(&bindings, &t, &goal).expect("RCN output must type check");
        }
    }

    #[test]
    fn functional_goal_produces_long_normal_form_lambdas() {
        let e = env(vec![(
            "p",
            Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")),
        )]);
        let goal = Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"));
        let terms = rcn(&e, &goal, 2);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].params.len(), 1);
        assert_eq!(terms[0].head, "p");
        let bindings = e.to_bindings();
        assert!(insynth_lambda::is_long_normal_form(
            &bindings, &terms[0], &goal
        ));
    }

    #[test]
    fn inhabitation_oracle_agrees_with_enumerability() {
        let inhabited = env(vec![
            ("b", Ty::base("B")),
            ("f", Ty::fun(vec![Ty::base("B")], Ty::base("A"))),
        ]);
        assert!(is_inhabited_ref(&inhabited, &Ty::base("A")));
        let uninhabited = env(vec![("f", Ty::fun(vec![Ty::base("B")], Ty::base("A")))]);
        assert!(!is_inhabited_ref(&uninhabited, &Ty::base("A")));
    }

    #[test]
    fn higher_order_goal_inhabitation_uses_the_extended_environment() {
        // Goal (A -> B) -> B with a : A — inhabited by λf. f(a)… wait, that
        // needs `a`; with only the binder f : A -> B and a : A it is inhabited.
        let e = env(vec![("a", Ty::base("A"))]);
        let goal = Ty::fun(
            vec![Ty::fun(vec![Ty::base("A")], Ty::base("B"))],
            Ty::base("B"),
        );
        assert!(is_inhabited_ref(&e, &goal));
        let terms = rcn(&e, &goal, 3);
        assert!(!terms.is_empty());
        let bindings = e.to_bindings();
        for t in &terms {
            check(&bindings, t, &goal).expect("must type check");
        }
    }

    #[test]
    fn uninhabited_empty_environment() {
        let e = TypeEnv::new();
        assert!(!is_inhabited_ref(&e, &Ty::base("A")));
        assert!(rcn(&e, &Ty::base("A"), 5).is_empty());
    }
}
