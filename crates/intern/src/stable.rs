//! A deterministic, run-to-run stable hasher for content addressing.
//!
//! [`std::collections::hash_map::DefaultHasher`] makes no stability promises
//! and the per-process randomized `RandomState` is explicitly unstable, so
//! anything that wants a *content address* — the same input always hashing to
//! the same value, in every run, on every platform — needs its own hasher.
//! [`StableHasher`] runs two independently seeded FNV-1a-style 64-bit lanes
//! and concatenates them into a 128-bit digest; the two lanes evolve
//! differently (distinct offset bases and multipliers), so a collision must
//! defeat both at once.
//!
//! This is a *fingerprinting* hash, not a cryptographic one: callers that use
//! digests as cache keys must verify equality of the underlying data on a hit
//! (see the engine's prepared-point cache) before sharing state across it.
//!
//! # Example
//!
//! ```
//! use insynth_intern::StableHasher;
//!
//! let mut a = StableHasher::new();
//! a.write_str("FileInputStream");
//! let mut b = StableHasher::new();
//! b.write_str("FileInputStream");
//! assert_eq!(a.finish(), b.finish());
//! ```

/// FNV-1a 64-bit offset basis (lane one).
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (lane one).
const PRIME_A: u64 = 0x0000_0100_0000_01b3;
/// Golden-ratio offset (lane two) — any odd constant distinct from lane one.
const OFFSET_B: u64 = 0x9e37_79b9_7f4a_7c15;
/// xxHash64 prime (lane two multiplier).
const PRIME_B: u64 = 0x9e37_79b1_85eb_ca87;

/// Two-lane FNV-1a-style streaming hasher producing a stable 128-bit digest.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        StableHasher {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    /// One mixing round over a 64-bit word, shared by every write method.
    #[inline]
    fn mix(&mut self, word: u64) {
        self.a = (self.a ^ word).wrapping_mul(PRIME_A);
        self.b = (self.b ^ word).rotate_left(23).wrapping_mul(PRIME_B);
    }

    /// Feeds one byte into both lanes.
    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.mix(u64::from(byte));
    }

    /// Feeds a byte slice, one mixing round per 8-byte chunk (the hasher
    /// runs over thousands of declaration names per fingerprint; a round per
    /// byte would dominate the cache-hit path it exists to keep cheap).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        // The trailing bytes go through the same framing as a short input;
        // `write_str`'s length prefix disambiguates chunk boundaries.
        for &byte in chunks.remainder() {
            self.write_u8(byte);
        }
    }

    /// Feeds a string, framed so that `("ab", "c")` and `("a", "bc")` hash
    /// differently when written in sequence.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a `u64` (one mixing round).
    pub fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    /// Feeds an `f64` by its exact bit pattern (distinguishes `0.0` from
    /// `-0.0`; callers decide whether that matters).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> u128 {
        // A final avalanche round per lane so short inputs still spread.
        let mut a = self.a;
        a ^= a >> 33;
        a = a.wrapping_mul(PRIME_B);
        a ^= a >> 29;
        let mut b = self.b;
        b ^= b >> 31;
        b = b.wrapping_mul(PRIME_A);
        b ^= b >> 27;
        (u128::from(a) << 64) | u128::from(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(f: impl FnOnce(&mut StableHasher)) -> u128 {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn equal_inputs_hash_equal() {
        let a = digest(|h| {
            h.write_str("x");
            h.write_u64(7);
        });
        let b = digest(|h| {
            h.write_str("x");
            h.write_u64(7);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn string_framing_prevents_concatenation_collisions() {
        let ab_c = digest(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let a_bc = digest(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn different_inputs_hash_differently() {
        let x = digest(|h| h.write_u64(1));
        let y = digest(|h| h.write_u64(2));
        assert_ne!(x, y);
        assert_ne!(digest(|_| {}), x);
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        let pos = digest(|h| h.write_f64(0.0));
        let neg = digest(|h| h.write_f64(-0.0));
        assert_ne!(pos, neg);
    }

    #[test]
    fn lanes_are_independent() {
        // The high and low halves must not be trivially correlated.
        let d = digest(|h| h.write_str("insynth"));
        assert_ne!((d >> 64) as u64, d as u64);
    }
}
