//! String interning and typed index utilities shared by all InSynth crates.
//!
//! The synthesis engine manipulates thousands of declarations, types and
//! environments; comparing and hashing them by interned integer ids instead of
//! by structural equality is what keeps the Explore / GenerateP phases cheap
//! (paper §3.2, §5.7).
//!
//! # Example
//!
//! ```
//! use insynth_intern::Interner;
//!
//! let mut interner = Interner::new();
//! let a = interner.intern("FileInputStream");
//! let b = interner.intern("FileInputStream");
//! assert_eq!(a, b);
//! assert_eq!(interner.resolve(a), "FileInputStream");
//! ```

mod idvec;
mod interner;
mod stable;
mod symbol;

pub use idvec::{Id, IdVec};
pub use interner::Interner;
pub use stable::StableHasher;
pub use symbol::Symbol;
