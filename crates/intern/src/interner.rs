//! A simple append-only string interner.

use std::collections::HashMap;

use crate::Symbol;

/// An append-only string interner.
///
/// Interning the same string twice returns the same [`Symbol`]. Symbols are
/// resolved back to `&str` in O(1).
///
/// # Example
///
/// ```
/// use insynth_intern::Interner;
///
/// let mut i = Interner::new();
/// let file = i.intern("File");
/// let reader = i.intern("Reader");
/// assert_ne!(file, reader);
/// assert_eq!(i.resolve(reader), "Reader");
/// assert_eq!(i.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol::from_index(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `s` if it has already been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.as_usize()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over all interned `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol::from_index(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.resolve(b), "y");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let a = i.intern("x");
        assert_eq!(i.get("x"), Some(a));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let names: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn symbols_survive_clone() {
        let mut i = Interner::new();
        let a = i.intern("panel");
        let j = i.clone();
        assert_eq!(j.resolve(a), "panel");
    }
}
