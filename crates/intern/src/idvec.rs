//! Typed indices and index-keyed vectors.
//!
//! The succinct-type store, the environment store and the declaration table
//! all map small dense integer ids to immutable data. `Id<T>` gives each of
//! those tables its own index type so that, for example, a succinct type id
//! cannot be used to index the environment store by mistake.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A typed index into an [`IdVec<T>`].
///
/// `Id<T>` is `Copy` and hashable regardless of `T`.
///
/// # Example
///
/// ```
/// use insynth_intern::{Id, IdVec};
///
/// let mut v: IdVec<String> = IdVec::new();
/// let id: Id<String> = v.push("hello".to_owned());
/// assert_eq!(v[id], "hello");
/// ```
pub struct Id<T> {
    index: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Id<T> {
    /// Creates an id from a raw index.
    pub fn from_index(index: u32) -> Self {
        Id {
            index,
            _marker: PhantomData,
        }
    }

    /// The raw index.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The raw index as `usize`.
    pub fn as_usize(self) -> usize {
        self.index as usize
    }
}

impl<T> Clone for Id<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Id<T> {}

impl<T> PartialEq for Id<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<T> Eq for Id<T> {}

impl<T> PartialOrd for Id<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Id<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.index.cmp(&other.index)
    }
}

impl<T> Hash for Id<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}

impl<T> fmt::Debug for Id<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.index)
    }
}

/// A vector indexed by [`Id<T>`].
///
/// # Example
///
/// ```
/// use insynth_intern::IdVec;
///
/// let mut v = IdVec::new();
/// let a = v.push(10);
/// let b = v.push(20);
/// assert_eq!(v[a] + v[b], 30);
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IdVec<T> {
    items: Vec<T>,
}

impl<T> Default for IdVec<T> {
    fn default() -> Self {
        IdVec { items: Vec::new() }
    }
}

impl<T> IdVec<T> {
    /// Creates an empty `IdVec`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item, returning its id.
    pub fn push(&mut self, item: T) -> Id<T> {
        let id = Id::from_index(self.items.len() as u32);
        self.items.push(item);
        id
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the vector holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns the item for `id`, if in bounds.
    pub fn get(&self, id: Id<T>) -> Option<&T> {
        self.items.get(id.as_usize())
    }

    /// Iterates over `(Id, &T)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Id<T>, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (Id::from_index(i as u32), t))
    }

    /// Iterates over the ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = Id<T>> + '_ {
        (0..self.items.len() as u32).map(Id::from_index)
    }
}

impl<T> Index<Id<T>> for IdVec<T> {
    type Output = T;
    fn index(&self, id: Id<T>) -> &T {
        &self.items[id.as_usize()]
    }
}

impl<T> IndexMut<Id<T>> for IdVec<T> {
    fn index_mut(&mut self, id: Id<T>) -> &mut T {
        &mut self.items[id.as_usize()]
    }
}

impl<T> FromIterator<T> for IdVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        IdVec {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index() {
        let mut v = IdVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let v: IdVec<u32> = IdVec::new();
        assert!(v.get(Id::from_index(0)).is_none());
    }

    #[test]
    fn ids_and_iter_agree() {
        let mut v = IdVec::new();
        v.push(1);
        v.push(2);
        let ids: Vec<_> = v.ids().collect();
        let pairs: Vec<_> = v.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, pairs);
    }

    #[test]
    fn id_equality_ignores_type_parameter_lifetime() {
        let a: Id<u8> = Id::from_index(1);
        let b: Id<u8> = Id::from_index(1);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn index_mut_updates_in_place() {
        let mut v = IdVec::new();
        let a = v.push(1);
        v[a] = 5;
        assert_eq!(v[a], 5);
    }

    #[test]
    fn from_iterator_collects() {
        let v: IdVec<u32> = (0..3).collect();
        assert_eq!(v.len(), 3);
    }
}
