//! Interned string handles.

use std::fmt;

/// A handle to an interned string.
///
/// `Symbol`s are cheap to copy, compare and hash. Two symbols produced by the
/// same [`crate::Interner`] are equal iff the strings they denote are equal.
///
/// The ordering of `Symbol`s follows interning order, not lexicographic order;
/// it is only useful for deterministic data structures (e.g. `BTreeMap` keys),
/// never for user-facing sorting.
///
/// # Example
///
/// ```
/// use insynth_intern::Interner;
///
/// let mut i = Interner::new();
/// let s = i.intern("getLayout");
/// assert_eq!(s.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Creates a symbol from a raw index.
    ///
    /// Only the [`crate::Interner`] that produced the index can resolve it; use
    /// this constructor when round-tripping indices through serialization or
    /// test fixtures.
    pub fn from_index(index: u32) -> Self {
        Symbol(index)
    }

    /// Returns the raw index of this symbol in its interner.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the raw index as a `usize`, convenient for table lookups.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_index() {
        let s = Symbol::from_index(17);
        assert_eq!(s.index(), 17);
        assert_eq!(s.as_usize(), 17);
    }

    #[test]
    fn equality_is_by_index() {
        assert_eq!(Symbol::from_index(3), Symbol::from_index(3));
        assert_ne!(Symbol::from_index(3), Symbol::from_index(4));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Symbol::from_index(1) < Symbol::from_index(2));
    }

    #[test]
    fn debug_shows_index() {
        assert_eq!(format!("{:?}", Symbol::from_index(5)), "Symbol(5)");
    }
}
