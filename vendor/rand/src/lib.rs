//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! mirror, so the external dependencies are vendored as minimal, API-compatible
//! stubs. This crate provides exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`].
//!
//! The generator is SplitMix64. It is deterministic for a given seed, which is
//! all the synthetic-corpus generator requires; it makes no cryptographic or
//! statistical-quality claims beyond "well mixed enough for test data".

use core::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_range(next: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(next: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128) - (low as u128);
                low + ((next as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(next: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128) - (low as i128);
                // Sum in i128: the offset alone can exceed $t::MAX even
                // though low + offset always fits.
                ((low as i128) + (next as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high-quality bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range.start, range.end)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(20u64..90);
            assert!((20..90).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            // Span (200) exceeds i8::MAX: the offset must be added in i128.
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1000..2000).contains(&hits), "got {hits} hits for p=0.15");
    }
}
