//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! mirror, so the external dependencies are vendored as minimal, API-compatible
//! stubs. This crate provides exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`].
//!
//! The generator is SplitMix64. It is deterministic for a given seed, which is
//! all the synthetic-corpus generator requires; it makes no cryptographic or
//! statistical-quality claims beyond "well mixed enough for test data".

use core::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_range(next: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(next: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128) - (low as u128);
                low + ((next as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(next: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128) - (low as i128);
                // Sum in i128: the offset alone can exceed $t::MAX even
                // though low + offset always fits.
                ((low as i128) + (next as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high-quality bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range.start, range.end)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// The subset of `rand::distributions::Distribution` the workspace uses.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A discrete distribution over indices `0..weights.len()`, where index
    /// `i` is drawn with probability `weights[i] / sum(weights)`. Stand-in
    /// for `rand::distributions::WeightedIndex`, sampled by inverse CDF over
    /// the cumulative weights.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        pub fn new(weights: impl IntoIterator<Item = f64>) -> Result<WeightedIndex, &'static str> {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                if !w.is_finite() || w < 0.0 {
                    return Err("WeightedIndex weights must be finite and non-negative");
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err("WeightedIndex needs at least one positive weight");
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            // 53 high-quality bits -> uniform f64 in [0, 1), as in gen_bool.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let target = unit * self.total;
            // partition_point: first index whose cumulative weight exceeds
            // the target; zero-weight entries are never selected because
            // their cumulative value equals their predecessor's.
            self.cumulative
                .partition_point(|&c| c <= target)
                .min(self.cumulative.len() - 1)
        }
    }

    /// A Zipf-like rank distribution over `1..=n`: rank `k` is drawn with
    /// probability proportional to `1 / k^s`. Built on [`WeightedIndex`], so
    /// it shares the same deterministic sampling path; fine for skewing a
    /// synthetic workload toward a hot set, no statistical-quality claims.
    #[derive(Clone, Debug)]
    pub struct Zipf {
        index: WeightedIndex,
    }

    impl Zipf {
        pub fn new(n: u64, s: f64) -> Result<Zipf, &'static str> {
            if n == 0 {
                return Err("Zipf needs at least one element");
            }
            if !s.is_finite() || s < 0.0 {
                return Err("Zipf exponent must be finite and non-negative");
            }
            let index = WeightedIndex::new((1..=n).map(|k| (k as f64).powf(-s)))?;
            Ok(Zipf { index })
        }
    }

    impl Distribution<u64> for Zipf {
        /// Samples a rank in `1..=n` (1 is the hottest).
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            self.index.sample(rng) as u64 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex, Zipf};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(20u64..90);
            assert!((20..90).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            // Span (200) exceeds i8::MAX: the offset must be added in i128.
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1000..2000).contains(&hits), "got {hits} hits for p=0.15");
    }

    #[test]
    fn weighted_index_is_roughly_calibrated_and_deterministic() {
        let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        // Expected 2500 / 0 / 7500.
        assert!((2000..3000).contains(&counts[0]), "got {counts:?}");
        assert_eq!(counts[1], 0, "zero-weight index was sampled");
        assert!((7000..8000).contains(&counts[2]), "got {counts:?}");

        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }

    #[test]
    fn weighted_index_rejects_degenerate_weights() {
        assert!(WeightedIndex::new([]).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([1.0, -1.0]).is_err());
        assert!(WeightedIndex::new([1.0, f64::NAN]).is_err());
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let dist = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut head = 0u32;
        for _ in 0..10_000 {
            let rank = dist.sample(&mut rng);
            assert!((1..=100).contains(&rank));
            if rank <= 10 {
                head += 1;
            }
        }
        // Harmonic mass of ranks 1..=10 out of 1..=100 is ~56%.
        assert!((5000..6500).contains(&head), "got {head} head hits");

        // s = 0 degenerates to uniform: the head holds ~10% of the mass.
        let flat = Zipf::new(100, 0.0).unwrap();
        let mut flat_head = 0u32;
        for _ in 0..10_000 {
            if flat.sample(&mut rng) <= 10 {
                flat_head += 1;
            }
        }
        assert!((700..1300).contains(&flat_head), "got {flat_head}");
    }
}
