//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of proptest: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, tuple and integer-range strategies,
//! [`collection::vec`], [`sample::select`], `prop_oneof!`, and the `proptest!`
//! test macro with `#![proptest_config(..)]` support.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! every case is generated from a deterministic RNG seeded from
//! `ProptestConfig::rng_seed`, the test function name and the case index, so a
//! failing case reproduces exactly on re-run. That determinism is what the
//! repository's CI relies on (see `tests/properties.rs`).

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    ///
    /// All fields are public so struct-update syntax
    /// (`ProptestConfig { cases: 48, ..ProptestConfig::default() }`) works as
    /// it does with the real crate.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Base seed for the deterministic per-case RNG. Fixed by default so
        /// CI never flakes; change it to explore a different sample.
        pub rng_seed: u64,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                rng_seed: 0x105_f7e5_7e5f_u64,
                max_shrink_iters: 0,
            }
        }
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic RNG used to drive strategies, backed by the vendored
    /// `rand` generator (as real proptest is backed by real rand).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Seed derived from the config seed, the test name and the case
        /// index, so each case of each property gets an independent stream.
        pub fn deterministic(base: u64, test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
            for byte in test_name.bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= case as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// The subset of proptest's `Strategy` used by this workspace: a strategy
    /// is a sampler; there is no shrink tree.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies. `depth` bounds the recursion; the size and
        /// branch hints are accepted for API compatibility but unused. Each
        /// level is an even mix of the leaf strategy and one more application
        /// of `f`, which yields values of varying depth up to `depth`.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                current = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between strategies of a common value type; the
    /// expansion of `prop_oneof!` and the recursion combinator.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// A strategy that always produces the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty list");
        Select { items }
    }

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Property-test entry point. Supports an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        __config.rng_seed,
                        stringify!($name),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Stand-ins for proptest's assertion macros. Without shrinking there is no
/// rejection machinery, so they simply delegate to the std assertions.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
