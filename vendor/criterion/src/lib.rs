//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of criterion: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, then timed
//! over `sample_size` samples whose iteration counts are sized so a sample
//! takes roughly [`TARGET_SAMPLE`]. The harness reports min / median / mean
//! per-iteration wall-clock times to stdout. There is no statistical analysis,
//! plotting, or baseline comparison — enough to spot order-of-magnitude
//! regressions, not to publish.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Rough wall-clock budget per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
    /// Substring filter taken from the command line, as `cargo bench -- foo`.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            default_sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.filter.as_deref(), self.default_sample_size, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(2);
        self
    }
}

/// A named family of related benchmarks (`group/function` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.effective_sample_size(),
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.effective_sample_size(),
            |bencher| f(bencher, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, `name/param`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing driver handed to the closure of every benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-sample wall-clock times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibration: how many iterations fit in the per-sample budget?
        let start = Instant::now();
        std::hint::black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    sample_size: usize,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples recorded)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let mean: Duration = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{id:<48} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples x {} iters)",
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

/// Collects benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
