//! `insynth-envlint`: the static-analysis lint over program points.
//!
//! Runs [`Engine::analyze`] — the producibility fixpoint plus the
//! dead-declaration / uninhabitable-type / ambiguous-overload /
//! duplicate / weight-anomaly diagnostics — over the shipped benchmark
//! environments (the figure-1 phases model and the scaled `javaapi` model)
//! or either one alone, and renders the reports for humans or machines.
//!
//! ```text
//! insynth-envlint                      # lint both shipped models, human output
//! insynth-envlint --check              # exit 1 on non-allowlisted warnings/errors
//! insynth-envlint --json               # the env/analyze wire shape, one line per model
//! insynth-envlint --model scaled --scale 13000
//! insynth-envlint --check --allowlist envlint.allow
//! ```
//!
//! Exit codes: `0` clean (or `--check` not requested), `1` at least one
//! non-allowlisted diagnostic at warning severity or above with `--check`,
//! `2` usage error. Reports are deterministic, so two runs over the same
//! models emit byte-identical output.

use std::process::ExitCode;
use std::sync::Arc;

use insynth::analysis::{Allowlist, AnalysisReport, Severity};
use insynth::bench::{phases_environment, scaled_environment};
use insynth::core::{Engine, SynthesisConfig, TypeEnv};
use insynth_server::{report_to_json, Json};

const USAGE: &str = "usage: insynth-envlint [--check] [--json] \
     [--model figure1|scaled|all] [--scale N] [--allowlist FILE]";

/// The figure-1 model's filler-package count: the bench harness's smallest
/// rung (≈1.3k declarations), the environment of the paper's running example.
const FIGURE1_FILLER: usize = 4;

/// Default declaration target for the scaled model — the 13k rung the CI
/// gates run at.
const DEFAULT_SCALE: usize = 13_000;

struct Options {
    check: bool,
    json: bool,
    model: ModelChoice,
    scale: usize,
    allowlist: Allowlist,
}

#[derive(PartialEq)]
enum ModelChoice {
    Figure1,
    Scaled,
    All,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        check: false,
        json: false,
        model: ModelChoice::All,
        scale: DEFAULT_SCALE,
        allowlist: Allowlist::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--check" => options.check = true,
            "--json" => options.json = true,
            "--model" => {
                options.model = match value("--model")?.as_str() {
                    "figure1" => ModelChoice::Figure1,
                    "scaled" => ModelChoice::Scaled,
                    "all" => ModelChoice::All,
                    other => return Err(format!("unknown model {other:?}")),
                }
            }
            "--scale" => {
                options.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--allowlist" => {
                let path = value("--allowlist")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
                options.allowlist =
                    Allowlist::parse(&text).map_err(|e| format!("parsing {path:?}: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn models(options: &Options) -> Vec<(String, TypeEnv)> {
    let mut out = Vec::new();
    if options.model != ModelChoice::Scaled {
        out.push((
            format!("figure1 (phases model, {FIGURE1_FILLER} filler packages)"),
            phases_environment(FIGURE1_FILLER),
        ));
    }
    if options.model != ModelChoice::Figure1 {
        out.push((
            format!("scaled (javaapi, target {} decls)", options.scale),
            scaled_environment(options.scale),
        ));
    }
    out
}

fn render_human(name: &str, env_len: usize, report: &AnalysisReport, allowlist: &Allowlist) {
    println!("== {name}: {env_len} declarations ==");
    print!("{}", report.render_human());
    let failing = report.failing(Severity::Warning, allowlist);
    if report.diagnostics.is_empty() {
        println!("clean");
    } else if failing.is_empty() {
        println!("no findings at warning severity or above (after allowlist)");
    } else {
        println!("{} finding(s) at warning severity or above", failing.len());
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("insynth-envlint: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let engine = Engine::new(SynthesisConfig::default());
    let mut failing_total = 0usize;
    for (name, env) in models(&options) {
        let report: Arc<AnalysisReport> = engine.analyze(&env);
        failing_total += report.failing(Severity::Warning, &options.allowlist).len();
        if options.json {
            let line = Json::object([
                ("model", Json::from(name)),
                ("report", report_to_json(&report)),
            ]);
            println!("{line}");
        } else {
            render_human(&name, env.len(), &report, &options.allowlist);
        }
    }

    if options.check && failing_total > 0 {
        eprintln!("insynth-envlint: {failing_total} non-allowlisted finding(s) at warning+");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
