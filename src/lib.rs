//! # InSynth — Complete Completion using Types and Weights
//!
//! A Rust reproduction of the InSynth system from *Complete Completion using
//! Types and Weights* (Gvero, Kuncak, Kuraj, Piskac; PLDI 2013).
//!
//! InSynth synthesizes ranked, type-correct expressions at a program point:
//! given the set of declarations visible at the cursor (a type environment Γ)
//! and a desired type τ, it enumerates lambda terms in long normal form with
//! Γ ⊢ e : τ, ranked by a weight function derived from lexical proximity and a
//! usage corpus.
//!
//! This facade crate re-exports the individual sub-crates:
//!
//! * [`intern`] — string interning and typed ids.
//! * [`lambda`] — the simply typed lambda calculus substrate (types, long
//!   normal form terms, type checking).
//! * [`succinct`] — succinct types, environments, patterns and the succinct
//!   calculus (paper §3).
//! * [`core`] — the synthesis engine: weights (§4), the Explore / GenerateP /
//!   GenerateT phases (§5), coercion-based subtyping (§6).
//! * [`apimodel`] — the program / API model substrate that stands in for the
//!   Scala presentation compiler: it produces declaration lists at program
//!   points and renders synthesized snippets in Scala-like syntax.
//! * [`corpus`] — usage-frequency corpus and the weight formula of Table 1.
//! * [`provers`] — baseline intuitionistic propositional provers (an
//!   inverse-method prover and a contraction-free sequent prover) used for the
//!   Table 2 comparison.
//! * [`benchsuite`] — the 50 evaluation benchmarks of Table 2 and the harness
//!   that reproduces the paper's measurements.
//! * [`server`] — the completion server front-end: a persistent
//!   JSON-over-stdio service (sessions, cancellation, admission control,
//!   metrics) over the engine. See [Running the
//!   server](#running-the-server).
//! * [`stats`] — shared measurement primitives: the 40-bucket log₂ latency
//!   histogram used by the server metrics and the trace-replay harness.
//!
//! # Quickstart
//!
//! The entry point is the session API, organized around **content-addressed
//! environments**. Every environment has a *fingerprint* — an
//! order-insensitive digest over its declaration multiset and effective
//! weights — and the `Engine` keys its caches on it, so the lifecycle of a
//! program point is: *prepare once per structurally distinct environment,
//! query many times, update by delta when the user edits*.
//!
//! ```
//! use insynth::core::{Declaration, DeclKind, Engine, EnvDelta, Query, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! // A tiny environment:  name: String,  mkFile: String -> File
//! let mut env = TypeEnv::new();
//! env.push(Declaration::simple("name", Ty::base("String"), DeclKind::Local));
//! env.push(Declaration::simple(
//!     "mkFile",
//!     Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!     DeclKind::Imported,
//! ));
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let session = engine.prepare(&env); // σ-lowering happens once, here
//!
//! // Query the prepared point as often as you like (from any number of
//! // threads: `Session` is `Send + Sync`, share it in an `Arc`).
//! let result = session.query(&Query::new(Ty::base("File")).with_n(5));
//! assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
//! let strings = session.query(&Query::new(Ty::base("String")));
//! assert_eq!(strings.snippets[0].term.to_string(), "name");
//!
//! // Preparing a structurally equal environment — same declarations, any
//! // order — is a fingerprint cache hit: no second σ run, shared graphs.
//! let permuted: TypeEnv = env.iter().rev().cloned().collect();
//! let same_point = engine.prepare(&permuted);
//! assert_eq!(same_point.fingerprint(), session.fingerprint());
//! assert_eq!(engine.prepare_count(), 1);
//!
//! // The user edits: update by delta instead of re-preparing from scratch.
//! // σ runs only on the changed declarations, cached graphs the edit cannot
//! // affect are carried over, and results are byte-identical to a fresh
//! // prepare of the edited environment.
//! let edited = session.update(
//!     &EnvDelta::new()
//!         .add(Declaration::simple("path", Ty::base("String"), DeclKind::Local))
//!         .reweight("mkFile", 50.0),
//! );
//! let result = edited.query(&Query::new(Ty::base("File")).with_n(5));
//! assert_eq!(result.snippets[1].term.to_string(), "mkFile(path)");
//! ```
//!
//! # Streaming and pagination
//!
//! The paper's anytime guarantee — best-first enumeration yields the
//! weight-ranked best terms first, so the user can always ask for *k more* —
//! is first-class: `Session::query_stream` returns a `TermStream`, an
//! iterator that pops the A* frontier exactly as far as demanded, and
//! dropping the stream **suspends** its walk state on the engine-cached
//! graph. The next query or stream under the same reconstruction budgets
//! *resumes* that walk instead of replaying it, so growing `n = 10` into
//! `n = 20` pays for ten new emissions, not thirty. Results are
//! byte-identical either way — resumption changes cost, never answers.
//!
//! ```
//! use insynth::core::{Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! // An infinite enumeration:  a : A,  s : A -> A  gives a, s(a), s(s(a)), …
//! let mut env = TypeEnv::new();
//! env.push(Declaration::simple("a", Ty::base("A"), DeclKind::Local));
//! env.push(Declaration::simple(
//!     "s",
//!     Ty::fun(vec![Ty::base("A")], Ty::base("A")),
//!     DeclKind::Local,
//! ));
//! let engine = Engine::new(SynthesisConfig::default());
//! let session = engine.prepare(&env);
//!
//! // Pull completions lazily, one ranked term at a time.
//! let mut stream = session.query_stream(&Query::new(Ty::base("A")));
//! let best = stream.next().unwrap();
//! assert_eq!(best.term.to_string(), "a");
//! assert!(stream.has_more()); // the `values` + `has_more` pagination contract
//! drop(stream); // suspends the walk on the cached graph
//!
//! // Plain `query` speaks the same contract: the second page resumes the
//! // suspended walk and pops only the delta.
//! let page1 = session.query(&Query::new(Ty::base("A")).with_n(3));
//! let page2 = session.query(&Query::new(Ty::base("A")).with_n(6));
//! assert!(page2.stats.resumed);
//! assert!(page2.stats.has_more);
//! assert_eq!(page2.snippets[0].term.to_string(), "a");
//! assert_eq!(page2.snippets.len(), 6);
//! ```
//!
//! `SynthesisStats` reports the pagination state: `has_more` says whether
//! enumeration past `n` could yield further terms, `resumed` whether this
//! query resumed a suspended walk, and `reconstruction_new_steps` the pops
//! this query actually paid (versus the cumulative `reconstruction_steps`,
//! which stays byte-compatible with a from-scratch walk).
//!
//! Derivation graphs (with their A* completion-cost heuristics) are memoized
//! on the **engine**, keyed `(environment fingerprint, goal, prover
//! budgets)`, so repeated queries — from any session addressing a
//! structurally equal point — skip straight to reconstruction, and builds
//! are single-flight under concurrency. Both caches are bounded
//! (`SynthesisConfig::graph_cache_capacity`, default 64 graphs, and
//! `SynthesisConfig::point_cache_capacity`, default 32 prepared points;
//! least-recently-used eviction), so long-lived engines stay bounded in
//! memory. Suspended walks follow the same discipline: each cached graph
//! parks at most `SynthesisConfig::suspended_walk_capacity` walk states
//! (default 4, LRU, keyed by reconstruction budgets), they ride along with
//! `Session::update`'s delta carry-over exactly when the edit provably
//! cannot reach their graph, and they are dropped — never stale-resumed —
//! otherwise.
//!
//! For many program points at once, `Engine::query_batch` groups requests by
//! fingerprint, prepares each distinct point once, and fans the queries out
//! across a scoped thread pool, returning results in input order:
//!
//! ```
//! use insynth::core::{BatchRequest, Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("name", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "mkFile",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let results = engine.query_batch(&[
//!     BatchRequest::new(env.clone(), Query::new(Ty::base("File"))),
//!     BatchRequest::new(env, Query::new(Ty::base("String"))),
//! ]);
//! assert_eq!(results[0].snippets[0].term.to_string(), "mkFile(name)");
//! assert_eq!(results[1].snippets[0].term.to_string(), "name");
//! ```
//!
//! # Scaling the environment axis
//!
//! At IDE scale — tens of thousands of visible declarations — preparation
//! (σ-lowering) and the per-goal derivation-graph build dominate. Both are
//! parallel by default and both are controlled by [`core::SynthesisConfig`]
//! knobs:
//!
//! * `sigma_shards` — σ-lowering is sharded across that many scoped threads
//!   (default: the machine's available parallelism). Each shard lowers a
//!   contiguous chunk of the declaration list into a private store; a
//!   deterministic merge then replays the canonical interning sequence, so
//!   the prepared result is **byte-identical** to a sequential prepare for
//!   *every* shard count — same ids, same weights, same
//!   [`core::PreparedEnv`] fingerprint. Small environments degrade to the
//!   sequential path automatically (sharding only pays past ~1k
//!   declarations per shard).
//! * `graph_build_threads` — the edge-resolution pass of the graph build
//!   fans out over that many threads (default likewise), with sequential
//!   interning and assembly passes bracketing it; output is byte-identical
//!   to the single-threaded build.
//!
//! Setting either knob to 1 pins the sequential path; the knobs change wall
//! time, never answers — a contract enforced by property tests
//! (`tests/shard_identity.rs`) and by the deterministic shard-invariance
//! gate in `baseline --check`. `Engine::stats()` reports the configured
//! values plus how many preparations actually ran sharded and the cumulative
//! prepare wall time.
//!
//! ```
//! use insynth::core::{Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! let env: TypeEnv = (0..256)
//!     .map(|i| {
//!         Declaration::simple(
//!             format!("mk{i}"),
//!             Ty::fun(vec![Ty::base(format!("T{}", i % 7))], Ty::base("File")),
//!             DeclKind::Imported,
//!         )
//!     })
//!     .collect();
//!
//! // Same environment, opposite ends of the parallelism spectrum.
//! let sequential = SynthesisConfig { sigma_shards: 1, graph_build_threads: 1, ..SynthesisConfig::default() };
//! let parallel = SynthesisConfig { sigma_shards: 8, graph_build_threads: 8, ..SynthesisConfig::default() };
//!
//! let a = Engine::new(sequential).prepare(&env);
//! let b = Engine::new(parallel).prepare(&env);
//! assert_eq!(a.fingerprint(), b.fingerprint()); // identical preparation …
//!
//! let query = Query::new(Ty::base("File")).with_n(8);
//! let (ra, rb) = (a.query(&query), b.query(&query));
//! // … and byte-identical answers, weights included.
//! assert_eq!(
//!     ra.snippets.iter().map(|s| s.term.to_string()).collect::<Vec<_>>(),
//!     rb.snippets.iter().map(|s| s.term.to_string()).collect::<Vec<_>>(),
//! );
//! ```
//!
//! # Analyzing an environment
//!
//! The engine can statically audit a program point before (or instead of)
//! querying it. [`core::Engine::analyze`] runs a goal-independent
//! producibility fixpoint over the σ-lowered signatures — the forward dual
//! of the explore phase — and reports, deterministically and sorted by
//! severity:
//!
//! * **dead declarations** (warning): a parameter type is unproducible in
//!   any environment a completion walk can construct, so the declaration
//!   can appear in no completion for any goal;
//! * **duplicate declarations** (warning): identical `(name, type)` pairs
//!   that render identical snippets;
//! * **weight anomalies** (error): negative effective weights, which break
//!   weight monotonicity and disable the A* walk;
//! * **uninhabitable types** and **ambiguous overload groups** (info):
//!   base types no term can have, and σ-indistinguishable equal-weight
//!   declarations whose relative ranking is pure tie-break order.
//!
//! ```
//! use insynth::analysis::{DiagnosticKind, Severity};
//! use insynth::core::{Declaration, DeclKind, Engine, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! let env: TypeEnv = [
//!     Declaration::simple("a", Ty::base("A"), DeclKind::Local),
//!     // `Missing` has no producer: `dead` can appear in no completion.
//!     Declaration::simple(
//!         "dead",
//!         Ty::fun(vec![Ty::base("Missing")], Ty::base("A")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//!
//! let engine = Engine::default();
//! let report = engine.analyze(&env);
//! assert_eq!(report.dead_decls, vec![1]);
//! assert_eq!(report.max_severity(), Some(Severity::Warning));
//! assert_eq!(report.count_of(DiagnosticKind::DeadDecl), 1);
//! // Analyzing the same point again is a fingerprint-cache hit.
//! assert!(engine.analyze(&env).dead_decls == report.dead_decls);
//! ```
//!
//! Reports are cached by environment fingerprint (bounded by
//! `SynthesisConfig::analysis_cache_capacity`), and the opt-in
//! `SynthesisConfig::prune_dead_decls` turns the same verdict into a
//! performance lever: each graph build first drops the declarations the
//! analysis proves unusable for that goal — answer-preserving by
//! construction, property-tested byte-identical on and off.
//!
//! The same report is available off the library path:
//!
//! ```text
//! insynth-envlint --check                 # lint the shipped models, gate on warnings
//! insynth-envlint --json --model scaled   # the env/analyze wire shape
//! insynth-envlint --check --allowlist envlint.allow
//! ```
//!
//! and over the server as `env/analyze` on an open session:
//!
//! ```text
//! → {"id": 2, "method": "env/analyze", "params": {"session": 1}}
//! ← {"id":2,"result":{"decl_count":3,"member_types":…,"producible_types":…,
//!    "unproducible_types":["Missing"],"dead_decls":[2],"weights_monotone":true,
//!    "diagnostics":[{"severity":"warning","code":"dead-decl","subject":"dead",…}]}}
//! ```
//!
//! # Running the server
//!
//! Everything above is the library view. The `insynth-server` binary (crate
//! [`server`]) wraps the same engine in a persistent process an editor can
//! talk to: one JSON request object per line on stdin, one JSON response
//! per line on stdout, answered strictly in request order.
//!
//! ```text
//! cargo run --release -p insynth_server --bin insynth-server
//! ```
//!
//! One example line per request kind:
//!
//! ```text
//! → {"id": 1, "method": "env/open", "params": {"env": [{"name": "a", "ty": "A"}, {"name": "s", "ty": {"args": ["A"], "ret": "A"}, "kind": "imported"}]}}
//! ← {"id":1,"result":{"session":1,"fingerprint":"23db…085e","decls":2}}
//!
//! → {"id": 2, "method": "completion/complete", "params": {"session": 1, "goal": "A", "n": 3}}
//! ← {"id":2,"result":{"values":[{"term":"a","weight":5,"depth":1,"coercions":0},…],"total":3,"has_more":true,"cursor":3,"resumed":false,"truncated":false,"steps":6}}
//!
//! → {"id": 3, "method": "completion/complete", "params": {"session": 1, "goal": "A", "n": 2, "cursor": 3}}
//! ← {"id":3,"result":{"values":[{"term":"s(s(s(a)))",…],"cursor":5,"resumed":true,…}}
//!
//! → {"id": 4, "method": "env/update", "params": {"session": 1, "delta": {"add": [{"name": "b", "ty": "A"}], "reweight": [{"name": "s", "weight": 50}]}}}
//! ← {"id":4,"result":{"session":1,"fingerprint":"8fd1…ccb8","decls":3}}
//!
//! → {"id": 5, "method": "$/cancel", "params": {"id": 6}}
//! ← {"id":5,"result":{"cancelled":6,"in_flight":false}}
//!
//! → {"id": 7, "method": "server/stats", "params": {"counters_only": true}}
//! ← {"id":7,"result":{"sessions":1,"requests":{…},"completions":{…},"engine":{…}}}
//!
//! → {"id": 8, "method": "session/close", "params": {"session": 1}}
//! ← {"id":8,"result":{"closed":1}}
//! ```
//!
//! **Session lifecycle.** `env/open` declares a program point (types are
//! strings for base types, `{"args": […], "ret": …}` for arrows) and
//! returns a session id plus the environment's content-address fingerprint;
//! opening a structurally equal point again is a fingerprint cache hit on
//! the engine underneath. `env/update` applies an `EnvDelta` to the session
//! in place — same id, new fingerprint, incremental re-preparation.
//! `completion/complete` pages through the ranked enumeration: pass the
//! returned `cursor` back to continue, and the continuation *resumes* the
//! suspended walk (`"resumed":true`) — zero extra graph builds, only the
//! new pops are paid. `session/close` drops the session (engine caches
//! survive for the next open of the same point).
//!
//! **Cancellation.** `$/cancel` names a request id. An in-flight request
//! observes the fired token at its next walk-step boundary and answers with
//! error `-32001`; its partially-walked state is discarded, never
//! persisted, and the loop keeps serving. Cancelling an id that has not
//! arrived yet is remembered and applied on arrival, so scripted
//! cancellation is deterministic. Per-request `max_steps` / `timeout_ms`
//! overrides and the page-size clamp are the admission-control counterpart:
//! they can only lower the engine's configured budgets, never raise them.
//!
//! **MCP note.** The `completion/complete` result (`values`, `total`,
//! `has_more`) deliberately mirrors the `completion/complete` shape of the
//! Model Context Protocol, so an MCP completion provider can proxy this
//! server nearly field-for-field; the `cursor` continuation and `$/cancel`
//! follow the same id-addressed, LSP-style conventions.
//!
//! # Replaying editor traces
//!
//! How does the engine behave under a realistic editing session — not one
//! query, but thousands of opens, keystrokes, pages and closes interleaved
//! across program points? The trace subsystem answers that reproducibly:
//!
//! * [`corpus::trace`] defines a versioned, line-oriented text format for
//!   editor traces — open/query/page/update/close events against numbered
//!   program points, ordered by abstract ticks, never wall clock — and a
//!   seeded generator ([`corpus::trace::generate_trace`]) with knobs for
//!   point count, Zipf skew of point popularity, the update/removal/page
//!   mix, and burst shape. Same seed and knobs, byte-identical trace, at
//!   any size from a hundred events to millions.
//! * [`bench::replay`] replays a trace against the engine on either path:
//!   [`bench::replay::replay_library`] drives `Engine`/`Session` calls
//!   directly on a configurable number of workers (events are sharded by
//!   point, so each point's order is preserved), and
//!   [`bench::replay::replay_server`] renders every event to the JSON
//!   protocol and feeds it through `Server::handle_line`. Both report
//!   throughput, p50/p90/p99 completion latency (the shared [`stats`]
//!   histogram), engine cache counters, and a result digest.
//!
//! The digest XOR-folds per-event FNV hashes of the returned term strings
//! and environment fingerprints — no weights, no timing — so it is
//! byte-identical across the library and server paths, across runs, and
//! across worker counts; the engine counters (prepares, graph builds) are
//! additionally exact at one worker, where LRU eviction order is
//! deterministic. `tests/trace_replay.rs` property-tests both contracts on
//! random knobs, and a `baseline --check` gate pins a seeded trace's
//! counters and digest in CI. The `insynth-trace` binary is the
//! command-line surface:
//!
//! ```text
//! insynth-trace generate --seed 42 --events 100000 --out edit.trace
//! insynth-trace inspect edit.trace
//! insynth-trace replay edit.trace --mode server --workers 4
//! insynth-trace replay --seed 7 --events 2000 --mode library --json --counters-only
//! ```
//!
//! # Migrating from the PR 2 session API
//!
//! Code written against the original `Engine::prepare` / `Session::query`
//! API compiles and behaves identically — `prepare`, `query`, `query_many`,
//! `query_batch`, `is_inhabited` and the `Query` builder are unchanged. What
//! changed underneath, and what new code should pick up:
//!
//! * **Caching moved from the session to the engine.** A session used to own
//!   its graph cache; now graphs live on the engine keyed by environment
//!   fingerprint, so sessions for structurally equal points share them.
//!   `Session::graph_build_count` still reports the builds *this session*
//!   performed; the engine-wide totals are `Engine::graph_build_count` and
//!   `Engine::prepare_count`. Cloning an `Engine` shares its caches; create
//!   engines with `Engine::new` when isolation is wanted.
//! * **Re-preparing an unchanged (or merely permuted) environment is now a
//!   cache hit** — the prepare-per-edit pattern no longer pays σ each time.
//!   If the old behavior is needed (e.g. memory isolation), set
//!   `SynthesisConfig::point_cache_capacity` to 0.
//! * **Edits should use `Session::update(&EnvDelta)`** instead of rebuilding
//!   the declaration list and calling `prepare`: adds and reweights
//!   re-prepare incrementally and keep unaffected cached graphs; removals
//!   fall back to a full preparation automatically.
//! * Nothing is deprecated by this change. The pre-session one-shot
//!   `Synthesizer` façade (deprecated since PR 2) still compiles; its
//!   repeated preparations now also benefit from the fingerprint cache.
//!
//! # Migrating from plain `query` to streams
//!
//! `Session::query` is now a thin consumer of `Session::query_stream`: it
//! opens a stream, drains `n` terms, and packages the classic
//! `SynthesisResult`. Existing callers keep compiling and keep getting
//! byte-identical answers — and transparently gain resumption: repeating a
//! goal with a larger `n` now pops only the delta. New code that feeds an
//! interactive surface should prefer `query_stream`:
//!
//! * `query(&q)` with `q.with_n(k)` ⇒ `query_stream(&q).take(k)` — same
//!   terms, same order, lazily popped; call `has_more()` to decide whether
//!   to offer a "more results" affordance instead of guessing from
//!   `snippets.len() == n`.
//! * There is no `Stream::close`: dropping the stream is what suspends its
//!   walk for the next resume. Hold the stream only while paginating.
//! * Per-query weight overrides still work on streams; they run against a
//!   private graph, so their walks never resume across different override
//!   values (and never pollute the shared cache).
//! * Determinism is unchanged: a resumed walk's emission sequence equals the
//!   from-scratch sequence bit for bit, in both the A* and the best-first
//!   fallback regimes, so pagination can never reorder or drop a term. Set
//!   `SynthesisConfig::suspended_walk_capacity` to 0 to disable persistence
//!   (results stay identical; follow-up queries just replay their walks).

pub use insynth_analysis as analysis;
pub use insynth_apimodel as apimodel;
pub use insynth_bench as bench;
pub use insynth_benchsuite as benchsuite;
pub use insynth_core as core;
pub use insynth_corpus as corpus;
pub use insynth_intern as intern;
pub use insynth_lambda as lambda;
pub use insynth_provers as provers;
pub use insynth_server as server;
pub use insynth_stats as stats;
pub use insynth_succinct as succinct;
