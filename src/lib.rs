//! # InSynth — Complete Completion using Types and Weights
//!
//! A Rust reproduction of the InSynth system from *Complete Completion using
//! Types and Weights* (Gvero, Kuncak, Kuraj, Piskac; PLDI 2013).
//!
//! InSynth synthesizes ranked, type-correct expressions at a program point:
//! given the set of declarations visible at the cursor (a type environment Γ)
//! and a desired type τ, it enumerates lambda terms in long normal form with
//! Γ ⊢ e : τ, ranked by a weight function derived from lexical proximity and a
//! usage corpus.
//!
//! This facade crate re-exports the individual sub-crates:
//!
//! * [`intern`] — string interning and typed ids.
//! * [`lambda`] — the simply typed lambda calculus substrate (types, long
//!   normal form terms, type checking).
//! * [`succinct`] — succinct types, environments, patterns and the succinct
//!   calculus (paper §3).
//! * [`core`] — the synthesis engine: weights (§4), the Explore / GenerateP /
//!   GenerateT phases (§5), coercion-based subtyping (§6).
//! * [`apimodel`] — the program / API model substrate that stands in for the
//!   Scala presentation compiler: it produces declaration lists at program
//!   points and renders synthesized snippets in Scala-like syntax.
//! * [`corpus`] — usage-frequency corpus and the weight formula of Table 1.
//! * [`provers`] — baseline intuitionistic propositional provers (an
//!   inverse-method prover and a contraction-free sequent prover) used for the
//!   Table 2 comparison.
//! * [`benchsuite`] — the 50 evaluation benchmarks of Table 2 and the harness
//!   that reproduces the paper's measurements.
//!
//! # Quickstart
//!
//! The entry point is the session API — `Engine` holds the configuration,
//! `Engine::prepare` lowers a program point's environment exactly once, and
//! the resulting `Session` answers any number of `Query`s (from any number of
//! threads: it is `Send + Sync`, share it in an `Arc`):
//!
//! ```
//! use insynth::core::{Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! // A tiny environment:  name: String,  mkFile: String -> File
//! let mut env = TypeEnv::new();
//! env.push(Declaration::simple("name", Ty::base("String"), DeclKind::Local));
//! env.push(Declaration::simple(
//!     "mkFile",
//!     Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!     DeclKind::Imported,
//! ));
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let session = engine.prepare(&env); // σ-lowering happens once, here
//!
//! // Query the prepared point as often as you like.
//! let result = session.query(&Query::new(Ty::base("File")).with_n(5));
//! assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
//! let strings = session.query(&Query::new(Ty::base("String")));
//! assert_eq!(strings.snippets[0].term.to_string(), "name");
//! ```
//!
//! Each session memoizes the derivation graph (and its A* completion-cost
//! heuristic) per queried goal, so repeated queries skip straight to
//! reconstruction. The cache is bounded — at most
//! `SynthesisConfig::graph_cache_capacity` graphs (default 64), evicted
//! least-recently-used — so even a session answering thousands of distinct
//! goals stays bounded in memory.
//!
//! For many program points at once, `Engine::query_batch` groups requests by
//! point, prepares each point once, and fans the queries out across a scoped
//! thread pool, returning results in input order:
//!
//! ```
//! use insynth::core::{BatchRequest, Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("name", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "mkFile",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let results = engine.query_batch(&[
//!     BatchRequest::new(env.clone(), Query::new(Ty::base("File"))),
//!     BatchRequest::new(env, Query::new(Ty::base("String"))),
//! ]);
//! assert_eq!(results[0].snippets[0].term.to_string(), "mkFile(name)");
//! assert_eq!(results[1].snippets[0].term.to_string(), "name");
//! ```
//!
//! The pre-session `Synthesizer` façade still compiles but is deprecated; it
//! re-prepares the environment on every call.

pub use insynth_apimodel as apimodel;
pub use insynth_benchsuite as benchsuite;
pub use insynth_core as core;
pub use insynth_corpus as corpus;
pub use insynth_intern as intern;
pub use insynth_lambda as lambda;
pub use insynth_provers as provers;
pub use insynth_succinct as succinct;
