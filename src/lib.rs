//! # InSynth — Complete Completion using Types and Weights
//!
//! A Rust reproduction of the InSynth system from *Complete Completion using
//! Types and Weights* (Gvero, Kuncak, Kuraj, Piskac; PLDI 2013).
//!
//! InSynth synthesizes ranked, type-correct expressions at a program point:
//! given the set of declarations visible at the cursor (a type environment Γ)
//! and a desired type τ, it enumerates lambda terms in long normal form with
//! Γ ⊢ e : τ, ranked by a weight function derived from lexical proximity and a
//! usage corpus.
//!
//! This facade crate re-exports the individual sub-crates:
//!
//! * [`intern`] — string interning and typed ids.
//! * [`lambda`] — the simply typed lambda calculus substrate (types, long
//!   normal form terms, type checking).
//! * [`succinct`] — succinct types, environments, patterns and the succinct
//!   calculus (paper §3).
//! * [`core`] — the synthesis engine: weights (§4), the Explore / GenerateP /
//!   GenerateT phases (§5), coercion-based subtyping (§6).
//! * [`apimodel`] — the program / API model substrate that stands in for the
//!   Scala presentation compiler: it produces declaration lists at program
//!   points and renders synthesized snippets in Scala-like syntax.
//! * [`corpus`] — usage-frequency corpus and the weight formula of Table 1.
//! * [`provers`] — baseline intuitionistic propositional provers (an
//!   inverse-method prover and a contraction-free sequent prover) used for the
//!   Table 2 comparison.
//! * [`benchsuite`] — the 50 evaluation benchmarks of Table 2 and the harness
//!   that reproduces the paper's measurements.
//!
//! # Quickstart
//!
//! ```
//! use insynth::core::{Declaration, DeclKind, Synthesizer, SynthesisConfig, TypeEnv};
//! use insynth::lambda::Ty;
//!
//! // A tiny environment:  name: String,  mkFile: String -> File
//! let mut env = TypeEnv::new();
//! env.push(Declaration::simple("name", Ty::base("String"), DeclKind::Local));
//! env.push(Declaration::simple(
//!     "mkFile",
//!     Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!     DeclKind::Imported,
//! ));
//!
//! let mut synth = Synthesizer::new(SynthesisConfig::default());
//! let result = synth.synthesize(&env, &Ty::base("File"), 5);
//! assert!(!result.snippets.is_empty());
//! assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
//! ```

pub use insynth_apimodel as apimodel;
pub use insynth_benchsuite as benchsuite;
pub use insynth_core as core;
pub use insynth_corpus as corpus;
pub use insynth_intern as intern;
pub use insynth_lambda as lambda;
pub use insynth_provers as provers;
pub use insynth_succinct as succinct;
